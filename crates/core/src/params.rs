//! Parameter derivation for Algorithms SF and SSF.
//!
//! Both protocols are parameterized by a sample budget `m` — how many
//! messages an agent must gather before forming an opinion. The paper gives
//! `m` up to a "sufficiently large" constant `c₁` (Eq. (19) for SF,
//! Eq. (30) for SSF); this module evaluates those formulas with `c₁`
//! exposed as a tuning knob.
//!
//! All logarithms are natural: the paper's analysis is carried out with
//! `e`-based concentration bounds, and only the shape of the running time
//! is asserted, so the base folds into `c₁`.
//!
//! On constants: the theorems hold "for `c₁` large enough" (Lemma 31's
//! proof uses `c₁ ≥ 4000`, and Section 5.4.3 carries a `2916·c₁` factor
//! for SSF). As is typical for this literature, the analysis constants
//! are wildly conservative. Empirically, SF converges reliably already at
//! `c₁ = 1`; SSF needs `c₁ ≈ 8–16` at simulable scales for its consensus
//! to *persist* through the √n fluctuations of the weak-opinion fraction
//! (see [`SsfParams::derive`]). Every experiment exposes `c₁` so the
//! sensitivity can be measured (see `EXPERIMENTS.md`).

use np_engine::population::PopulationConfig;

use crate::{CoreError, Result};

/// Default tuning constant `c₁` (see the module docs).
pub const DEFAULT_C1: f64 = 1.0;

/// Derived parameters for Algorithm SF (Source Filter).
///
/// # Example
///
/// ```
/// use noisy_pull::params::SfParams;
/// use np_engine::population::PopulationConfig;
///
/// let config = PopulationConfig::new(1024, 0, 1, 1024)?; // single source, h = n
/// let params = SfParams::derive(&config, 0.2, 1.0)?;
/// assert!(params.m() >= 1);
/// // Phase lengths cover the message budget.
/// assert!(params.phase_len() as u128 * 1024 >= params.m() as u128);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfParams {
    n: usize,
    h: usize,
    delta: f64,
    m: u64,
    w: u64,
    phase_len: u64,
    subphase_len: u64,
    final_subphase_len: u64,
    num_short_subphases: u64,
}

impl SfParams {
    /// Evaluates Eq. (19):
    ///
    /// `m = c₁·( n·δ·ln n / (min{s², n}·(1−2δ)²) + √n·ln n / s
    ///          + (s0+s1)·ln n / s² + h·ln n )`,
    ///
    /// then derives the schedule: phase length `T = ⌈m/h⌉`, sub-phase
    /// message budget `w = 100/(1−2δ)²`, sub-phase length `⌈w/h⌉`,
    /// `⌈10·ln n⌉` short boosting sub-phases plus one final sub-phase of
    /// length `T`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoiseTooHigh`] unless `0 ≤ δ < ½`.
    /// * [`CoreError::BadParameter`] unless `c1 > 0` and finite.
    pub fn derive(config: &PopulationConfig, delta: f64, c1: f64) -> Result<Self> {
        if !(0.0..0.5).contains(&delta) {
            return Err(CoreError::NoiseTooHigh { delta, limit: 0.5 });
        }
        validate_c1(c1)?;
        let n = config.n() as f64;
        let h = config.h() as f64;
        let s = config.bias() as f64;
        let sources = config.num_sources() as f64;
        let log_n = n.ln().max(1.0);
        let gap = 1.0 - 2.0 * delta;
        let m_real = c1
            * (n * delta * log_n / (s * s).min(n) / (gap * gap)
                + n.sqrt() * log_n / s
                + sources * log_n / (s * s)
                + h * log_n);
        let m = (m_real.ceil() as u64).max(1);
        let w = ((100.0 / (gap * gap)).ceil() as u64).max(1);
        let phase_len = m.div_ceil(config.h() as u64);
        let subphase_len = w.div_ceil(config.h() as u64);
        let num_short_subphases = (10.0 * log_n).ceil() as u64;
        Ok(SfParams {
            n: config.n(),
            h: config.h(),
            delta,
            m,
            w,
            phase_len,
            subphase_len,
            final_subphase_len: phase_len,
            num_short_subphases,
        })
    }

    /// Overrides the message budget `m`, re-deriving the schedule. Used by
    /// ablation experiments that sweep `m` directly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParameter`] if `m == 0`.
    pub fn with_m(&self, m: u64) -> Result<Self> {
        if m == 0 {
            return Err(CoreError::BadParameter {
                name: "m",
                detail: "message budget must be positive".into(),
            });
        }
        let phase_len = m.div_ceil(self.h as u64);
        Ok(SfParams {
            m,
            phase_len,
            final_subphase_len: phase_len,
            ..*self
        })
    }

    /// Population size this schedule was derived for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample size `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Uniform noise level `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The message budget `m` (Eq. (19)).
    pub fn m(&self) -> u64 {
        self.m
    }

    /// The per-sub-phase message budget `w = 100/(1−2δ)²`.
    pub fn w(&self) -> u64 {
        self.w
    }

    /// Length in rounds of each of Phases 0 and 1: `T = ⌈m/h⌉`.
    pub fn phase_len(&self) -> u64 {
        self.phase_len
    }

    /// Length in rounds of each short boosting sub-phase: `⌈w/h⌉`.
    pub fn subphase_len(&self) -> u64 {
        self.subphase_len
    }

    /// Length in rounds of the final boosting sub-phase: `⌈m/h⌉`.
    pub fn final_subphase_len(&self) -> u64 {
        self.final_subphase_len
    }

    /// Number of short boosting sub-phases: `⌈10·ln n⌉`.
    pub fn num_short_subphases(&self) -> u64 {
        self.num_short_subphases
    }

    /// Total schedule length in rounds:
    /// `2T + ⌈10 ln n⌉·⌈w/h⌉ + T`.
    pub fn total_rounds(&self) -> u64 {
        2 * self.phase_len + self.num_short_subphases * self.subphase_len + self.final_subphase_len
    }

    /// Appends the full schedule to an `np-snap/v1` writer. The derived
    /// values are persisted verbatim — a restored run must use *exactly*
    /// the schedule it started with, not a re-derivation.
    pub(crate) fn encode_snap(&self, out: &mut np_engine::snapshot::SnapWriter) {
        out.put_usize(self.n);
        out.put_usize(self.h);
        out.put_f64(self.delta);
        out.put_u64(self.m);
        out.put_u64(self.w);
        out.put_u64(self.phase_len);
        out.put_u64(self.subphase_len);
        out.put_u64(self.final_subphase_len);
        out.put_u64(self.num_short_subphases);
    }

    /// Decodes a schedule written by [`SfParams::encode_snap`].
    pub(crate) fn decode_snap(
        r: &mut np_engine::snapshot::SnapReader<'_>,
    ) -> np_engine::Result<Self> {
        Ok(SfParams {
            n: r.take_usize()?,
            h: r.take_usize()?,
            delta: r.take_f64()?,
            m: r.take_u64()?,
            w: r.take_u64()?,
            phase_len: r.take_u64()?,
            subphase_len: r.take_u64()?,
            final_subphase_len: r.take_u64()?,
            num_short_subphases: r.take_u64()?,
        })
    }
}

/// Derived parameters for Algorithm SSF (Self-stabilizing Source Filter).
///
/// # Example
///
/// ```
/// use noisy_pull::params::SsfParams;
/// use np_engine::population::PopulationConfig;
///
/// let config = PopulationConfig::new(512, 0, 1, 512)?;
/// let params = SsfParams::derive(&config, 0.1, 1.0)?;
/// assert!(params.m() >= 512); // Eq. (30) has an additive n term
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsfParams {
    n: usize,
    h: usize,
    delta: f64,
    m: u64,
}

impl SsfParams {
    /// Evaluates Eq. (30): `m = c₁·( δ·n·ln n / (1−4δ)² + n )`.
    ///
    /// Guidance on `c₁`: the steady-state weak-opinion advantage scales
    /// like `√(c₁·δ·ln n / n)/(stuff)`, while the weak-opinion *fraction*
    /// fluctuates by `±1/(2√n)` every update cycle (it is a fresh binomial
    /// each time). For the consensus to persist through those dips the
    /// advantage must dominate the fluctuation with margin — empirically
    /// `c₁ ≈ 8–16` at `n ∈ [256, 4096]`, which is the small-scale shadow
    /// of the paper's conservative `2916·c₁` constant in Section 5.4.3.
    /// `c₁ = 1` converges but loses consensus for an occasional update
    /// cycle.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoiseTooHigh`] unless `0 ≤ δ < ¼` (the 4-symbol
    ///   uniform channel must retain information).
    /// * [`CoreError::BadParameter`] unless `c1 > 0` and finite.
    pub fn derive(config: &PopulationConfig, delta: f64, c1: f64) -> Result<Self> {
        if !(0.0..0.25).contains(&delta) {
            return Err(CoreError::NoiseTooHigh { delta, limit: 0.25 });
        }
        validate_c1(c1)?;
        let n = config.n() as f64;
        let log_n = n.ln().max(1.0);
        let gap = 1.0 - 4.0 * delta;
        let m_real = c1 * (delta * n * log_n / (gap * gap) + n);
        let m = (m_real.ceil() as u64).max(1);
        Ok(SsfParams {
            n: config.n(),
            h: config.h(),
            delta,
            m,
        })
    }

    /// Overrides the message budget `m` (ablation experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParameter`] if `m == 0`.
    pub fn with_m(&self, m: u64) -> Result<Self> {
        if m == 0 {
            return Err(CoreError::BadParameter {
                name: "m",
                detail: "message budget must be positive".into(),
            });
        }
        Ok(SsfParams { m, ..*self })
    }

    /// Population size this schedule was derived for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample size `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Uniform noise level `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The memory capacity `m` (Eq. (30)).
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Rounds between two update rounds of one agent: `⌈m/h⌉` (an agent
    /// whose memory starts empty updates after this many rounds).
    pub fn update_interval(&self) -> u64 {
        (self.m).div_ceil(self.h as u64)
    }

    /// The round budget after which Theorem 5 expects consensus from a
    /// clean start: three update intervals (the analysis needs two — one to
    /// flush adversarial memory, one to form independent weak opinions —
    /// plus one for opinions to follow; see Lemma 39's `t ≥ 3⌈m/h⌉`).
    pub fn expected_convergence_rounds(&self) -> u64 {
        3 * self.update_interval()
    }
}

fn validate_c1(c1: f64) -> Result<()> {
    if !(c1.is_finite() && c1 > 0.0) {
        return Err(CoreError::BadParameter {
            name: "c1",
            detail: format!("must be positive and finite, got {c1}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, s0: usize, s1: usize, h: usize) -> PopulationConfig {
        PopulationConfig::new(n, s0, s1, h).unwrap()
    }

    #[test]
    fn sf_rejects_bad_noise_and_c1() {
        let cfg = config(100, 0, 1, 10);
        assert!(matches!(
            SfParams::derive(&cfg, 0.5, 1.0),
            Err(CoreError::NoiseTooHigh { .. })
        ));
        assert!(SfParams::derive(&cfg, -0.1, 1.0).is_err());
        assert!(SfParams::derive(&cfg, 0.1, 0.0).is_err());
        assert!(SfParams::derive(&cfg, 0.1, f64::NAN).is_err());
        assert!(SfParams::derive(&cfg, 0.0, 1.0).is_ok());
    }

    #[test]
    fn sf_m_grows_with_noise() {
        let cfg = config(1000, 0, 1, 100);
        let low = SfParams::derive(&cfg, 0.05, 1.0).unwrap();
        let high = SfParams::derive(&cfg, 0.4, 1.0).unwrap();
        assert!(high.m() > low.m());
    }

    #[test]
    fn sf_m_shrinks_with_bias() {
        let weak = SfParams::derive(&config(1000, 0, 1, 100), 0.2, 1.0).unwrap();
        let strong = SfParams::derive(&config(1000, 0, 9, 100), 0.2, 1.0).unwrap();
        assert!(strong.m() < weak.m());
    }

    #[test]
    fn sf_schedule_consistency() {
        let cfg = config(4096, 0, 1, 4096);
        let p = SfParams::derive(&cfg, 0.2, 1.0).unwrap();
        // Phase covers the budget.
        assert!(p.phase_len() * cfg.h() as u64 >= p.m());
        // Sub-phase covers w.
        assert!(p.subphase_len() * cfg.h() as u64 >= p.w());
        assert_eq!(p.final_subphase_len(), p.phase_len());
        assert_eq!(
            p.total_rounds(),
            3 * p.phase_len() + p.num_short_subphases() * p.subphase_len()
        );
        assert_eq!(
            p.num_short_subphases(),
            (10.0 * (4096f64).ln()).ceil() as u64
        );
        assert_eq!(p.n(), 4096);
        assert_eq!(p.h(), 4096);
        assert_eq!(p.delta(), 0.2);
    }

    #[test]
    fn sf_m_golden_value() {
        // Hand evaluation of Eq. (19) at n = h = 1024, δ = 0.2, s = 1:
        // ln 1024 ≈ 6.93147;
        // noise term  1024·0.2·ln n / 0.36 ≈ 3943.26
        // √n term     32·ln n              ≈ 221.81
        // sources     1·ln n               ≈ 6.93
        // h term      1024·ln n            ≈ 7097.83
        // total ≈ 11269.83 → ⌈·⌉ = 11270.
        let cfg = config(1024, 0, 1, 1024);
        let p = SfParams::derive(&cfg, 0.2, 1.0).unwrap();
        assert_eq!(p.m(), 11270);
        assert_eq!(p.phase_len(), 12); // ⌈11270/1024⌉
        assert_eq!(p.w(), 278); // ⌈100/0.36⌉
        assert_eq!(p.num_short_subphases(), 70); // ⌈10·ln 1024⌉
    }

    #[test]
    fn ssf_m_golden_value() {
        // Eq. (30) at n = 1024, δ = 0.1, c₁ = 1:
        // 0.1·1024·ln n / 0.36 + 1024 ≈ 1971.6 + 1024 → ⌈·⌉ = 2996.
        let cfg = config(1024, 0, 1, 1024);
        let p = SsfParams::derive(&cfg, 0.1, 1.0).unwrap();
        assert_eq!(p.m(), 2996);
    }

    #[test]
    fn sf_c1_scales_m_linearly() {
        let cfg = config(1000, 0, 1, 10);
        let p1 = SfParams::derive(&cfg, 0.2, 1.0).unwrap();
        let p2 = SfParams::derive(&cfg, 0.2, 2.0).unwrap();
        let ratio = p2.m() as f64 / p1.m() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn sf_with_m_rederives_schedule() {
        let cfg = config(1000, 0, 1, 10);
        let p = SfParams::derive(&cfg, 0.2, 1.0).unwrap();
        let q = p.with_m(100).unwrap();
        assert_eq!(q.m(), 100);
        assert_eq!(q.phase_len(), 10);
        assert_eq!(q.final_subphase_len(), 10);
        assert!(p.with_m(0).is_err());
    }

    #[test]
    fn sf_noiseless_has_small_w() {
        let cfg = config(1000, 0, 1, 10);
        let p = SfParams::derive(&cfg, 0.0, 1.0).unwrap();
        assert_eq!(p.w(), 100);
    }

    #[test]
    fn ssf_rejects_bad_noise() {
        let cfg = config(100, 0, 1, 10);
        assert!(matches!(
            SsfParams::derive(&cfg, 0.25, 1.0),
            Err(CoreError::NoiseTooHigh { limit, .. }) if limit == 0.25
        ));
        assert!(SsfParams::derive(&cfg, -0.01, 1.0).is_err());
        assert!(SsfParams::derive(&cfg, 0.2, -1.0).is_err());
        assert!(SsfParams::derive(&cfg, 0.0, 1.0).is_ok());
    }

    #[test]
    fn ssf_m_has_additive_n_floor() {
        let cfg = config(512, 0, 1, 512);
        let p = SsfParams::derive(&cfg, 0.0, 1.0).unwrap();
        assert_eq!(p.m(), 512);
        let q = SsfParams::derive(&cfg, 0.1, 1.0).unwrap();
        assert!(q.m() > 512);
        assert_eq!(q.n(), 512);
        assert_eq!(q.h(), 512);
        assert_eq!(q.delta(), 0.1);
    }

    #[test]
    fn ssf_update_interval_and_budget() {
        let cfg = config(512, 0, 1, 512);
        let p = SsfParams::derive(&cfg, 0.1, 1.0).unwrap();
        assert_eq!(p.update_interval(), p.m().div_ceil(512));
        assert_eq!(p.expected_convergence_rounds(), 3 * p.update_interval());
        let q = p.with_m(1024).unwrap();
        assert_eq!(q.update_interval(), 2);
        assert!(p.with_m(0).is_err());
    }

    #[test]
    fn ssf_m_diverges_near_quarter() {
        let cfg = config(1000, 0, 1, 10);
        let p1 = SsfParams::derive(&cfg, 0.1, 1.0).unwrap();
        let p2 = SsfParams::derive(&cfg, 0.24, 1.0).unwrap();
        assert!(p2.m() > 10 * p1.m());
    }
}
