use std::fmt;

/// Errors produced when deriving protocol parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The noise level is outside the range the protocol tolerates
    /// (`δ < ½` for SF's binary alphabet, `δ < ¼` for SSF's 4-symbol
    /// alphabet).
    NoiseTooHigh {
        /// The offending level.
        delta: f64,
        /// The exclusive upper limit for this protocol.
        limit: f64,
    },
    /// A tuning constant or derived parameter was non-positive or
    /// non-finite.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoiseTooHigh { delta, limit } => {
                write!(
                    f,
                    "noise level δ = {delta} not below the protocol limit {limit}"
                )
            }
            CoreError::BadParameter { name, detail } => {
                write!(f, "bad parameter `{name}`: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for e in [
            CoreError::NoiseTooHigh {
                delta: 0.6,
                limit: 0.5,
            },
            CoreError::BadParameter {
                name: "c1",
                detail: "must be positive".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
