//! Memory accounting: the paper's `O(log T + log h)` bits-per-agent claim.
//!
//! Theorems 4 and 5 state that each agent needs only
//! `O(log T + log h)` bits of memory, where `T` is the running time. The
//! intuition: an agent stores a constant number of counters, each counting
//! at most `T·h` observed messages, so each fits in `⌈log₂(T·h + 1)⌉`
//! bits — plus a constant number of state bits.
//!
//! This module computes the *information-theoretic state size* of SF and
//! SSF agents — the number of bits needed to encode each live field's
//! value range, not Rust's in-RAM `size_of` (which uses fixed-width
//! machine words for speed). Tests and the `exp_memory` experiment check
//! the paper's bound against these counts.

use crate::params::{SfParams, SsfParams};

/// Bits needed to store a counter whose value is at most `max` (at least
/// 1 bit).
pub fn bits_for_counter(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

/// Information-theoretic state size of an SF agent, in bits, for the given
/// schedule.
///
/// Fields: two phase counters (≤ `T·h` each where `T = ⌈m/h⌉`), a
/// round-in-stage counter (≤ the longest stage), a sub-phase index
/// (≤ `10·ln n + 1`), the boosting memory (two counters ≤ sub-phase
/// messages), the stage tag, the weak opinion and the opinion.
pub fn sf_state_bits(params: &SfParams) -> u32 {
    let h = params.h() as u64;
    let phase_messages = params.phase_len().saturating_mul(h);
    let subphase_messages = params
        .final_subphase_len()
        .max(params.subphase_len())
        .saturating_mul(h);
    let counters = 2 * bits_for_counter(phase_messages);
    let round_counter = bits_for_counter(params.phase_len().max(params.final_subphase_len()));
    let subphase_index = bits_for_counter(params.num_short_subphases() + 1);
    let boost_mem = 2 * bits_for_counter(subphase_messages);
    // Stage tag (2 bits for 4 stages), weak opinion (1 + presence bit),
    // opinion (1).
    let fixed = 2 + 2 + 1;
    counters + round_counter + subphase_index + boost_mem + fixed
}

/// Information-theoretic state size of an SSF agent, in bits.
///
/// Fields: four memory counters summing to at most `m + h`, a memory-size
/// counter, the weak opinion and the opinion. (The capacity `m` itself is
/// protocol knowledge, not per-agent state.)
pub fn ssf_state_bits(params: &SsfParams) -> u32 {
    let cap = params.m().saturating_add(params.h() as u64);
    4 * bits_for_counter(cap) + bits_for_counter(cap) + 1 + 1
}

/// The paper's yardstick `log₂ T + log₂ h` (plus 1 to avoid zero), for
/// comparing against the state-bit counts.
pub fn paper_yardstick_bits(total_rounds: u64, h: usize) -> u32 {
    bits_for_counter(total_rounds) + bits_for_counter(h as u64) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::population::PopulationConfig;

    #[test]
    fn bits_for_counter_values() {
        assert_eq!(bits_for_counter(0), 1);
        assert_eq!(bits_for_counter(1), 1);
        assert_eq!(bits_for_counter(2), 2);
        assert_eq!(bits_for_counter(255), 8);
        assert_eq!(bits_for_counter(256), 9);
        assert_eq!(bits_for_counter(u64::MAX), 64);
    }

    /// The Theorem 4/5 claim: state bits are within a constant factor of
    /// `log T + log h`, across a broad parameter sweep.
    #[test]
    fn state_bits_track_the_paper_bound() {
        for exp in [6usize, 8, 10, 12, 14, 16] {
            let n = 1 << exp;
            for h in [1usize, 16, n] {
                let config = PopulationConfig::new(n, 0, 1, h).unwrap();
                let sf = SfParams::derive(&config, 0.2, 1.0).unwrap();
                let yard = paper_yardstick_bits(sf.total_rounds(), h);
                let bits = sf_state_bits(&sf);
                assert!(
                    bits <= 10 * yard,
                    "SF n={n} h={h}: {bits} bits vs yardstick {yard}"
                );

                let ssf = SsfParams::derive(&config, 0.1, 16.0).unwrap();
                let budget = 10 * ssf.update_interval();
                let yard = paper_yardstick_bits(budget, h);
                let bits = ssf_state_bits(&ssf);
                assert!(
                    bits <= 10 * yard,
                    "SSF n={n} h={h}: {bits} bits vs yardstick {yard}"
                );
            }
        }
    }

    #[test]
    fn state_bits_grow_logarithmically_not_linearly() {
        // Quadrupling n must add only O(1) bits.
        let bits_at = |n: usize| {
            let config = PopulationConfig::new(n, 0, 1, n).unwrap();
            sf_state_bits(&SfParams::derive(&config, 0.2, 1.0).unwrap())
        };
        let small = bits_at(1 << 8);
        let large = bits_at(1 << 16);
        assert!(large - small < 64, "bits grew {small} → {large}");
    }

    #[test]
    fn ssf_bits_count_memory_capacity() {
        let config = PopulationConfig::new(1024, 0, 1, 1024).unwrap();
        let p1 = SsfParams::derive(&config, 0.1, 1.0).unwrap();
        let p16 = SsfParams::derive(&config, 0.1, 16.0).unwrap();
        // 16× capacity = 4 extra bits per counter × 5 counters.
        assert!(ssf_state_bits(&p16) > ssf_state_bits(&p1));
        assert!(ssf_state_bits(&p16) - ssf_state_bits(&p1) <= 5 * 5);
    }
}
