//! SF-ALT — the "more natural" variant from the Remark in §2.1 of the
//! paper.
//!
//! > *"Perhaps a more natural algorithm would allow each agent to first
//! > flip a fair coin to determine the message it will present on the
//! > first round, and then, over the following rounds, deterministically
//! > alternate between 0 and 1. While it is plausible that such a scheme
//! > would work as well, it does add some complexity to the analysis."*
//!
//! This module implements that scheme so the plausibility claim can be
//! tested (experiment EXP-VARIANT). During a single combined listening
//! stage of `2T` rounds, each non-source displays
//! `b, 1−b, b, …` for a fair coin `b`, while sources display their
//! preference; every agent accumulates the *signed difference*
//! `#1s − #0s` over all observations. Over an even number of rounds every
//! non-source displays each value exactly `T` times, so the background
//! cancels *exactly* in expectation and the source bias is the only
//! systematic drift — the same effect SF achieves with its two all-0 /
//! all-1 phases, without the population-wide phase switch. The weak
//! opinion is the sign of the difference; Majority Boosting is then
//! identical to SF's.
//!
//! The measurable trade-off: here a sampled non-source contributes a
//! `Bernoulli(≈½)` value (extra variance per observation), whereas SF's
//! phases make the background deterministic within each phase; SF-ALT's
//! weak opinions are therefore expected to be slightly *less* accurate at
//! equal `m` — quantified in EXP-VARIANT.

use np_engine::opinion::Opinion;
use np_engine::population::Role;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use rand::Rng;

use crate::params::SfParams;

/// The alternating-display Source Filter variant (Remark, §2.1). Shares
/// [`SfParams`] with [`crate::sf::SourceFilter`]: the same `m`, phase
/// lengths and boosting schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlternatingSourceFilter {
    params: SfParams,
}

impl AlternatingSourceFilter {
    /// Creates the protocol from a derived schedule.
    pub fn new(params: SfParams) -> Self {
        AlternatingSourceFilter { params }
    }

    /// The schedule in use.
    pub fn params(&self) -> &SfParams {
        &self.params
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// The combined listening stage (`2T` rounds).
    Listening,
    /// Majority boosting, with the sub-phase index.
    Boost(u64),
    /// Schedule complete.
    Done,
}

/// Per-agent state of SF-ALT.
#[derive(Debug, Clone)]
pub struct AltSfAgent {
    role: Role,
    params: SfParams,
    stage: Stage,
    round_in_stage: u64,
    /// The value displayed on even listening rounds (the initial coin).
    base_display: Opinion,
    /// Running `#1s − #0s` over all listening observations.
    diff: i64,
    weak: Option<Opinion>,
    opinion: Opinion,
    mem: [u64; 2],
}

impl AltSfAgent {
    /// The weak opinion, available once the listening stage completed.
    pub fn weak_opinion(&self) -> Option<Opinion> {
        self.weak
    }

    /// The running signed evidence `#1s − #0s`.
    pub fn evidence(&self) -> i64 {
        self.diff
    }

    /// Returns `true` once the schedule has completed.
    pub fn is_done(&self) -> bool {
        self.stage == Stage::Done
    }

    fn majority_of_mem(&self, rng: &mut StreamRng) -> Opinion {
        match self.mem[1].cmp(&self.mem[0]) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
        }
    }
}

impl Protocol for AlternatingSourceFilter {
    type Agent = AltSfAgent;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> AltSfAgent {
        AltSfAgent {
            role,
            params: self.params,
            stage: Stage::Listening,
            round_in_stage: 0,
            base_display: Opinion::from_bool(rng.gen()),
            diff: 0,
            weak: None,
            opinion: Opinion::from_bool(rng.gen()),
            mem: [0, 0],
        }
    }
}

impl AgentState for AltSfAgent {
    fn display(&self, _rng: &mut StreamRng) -> usize {
        match self.stage {
            Stage::Listening => match self.role {
                Role::Source(pref) => pref.as_index(),
                Role::NonSource => {
                    // b on even rounds, 1−b on odd rounds.
                    if self.round_in_stage.is_multiple_of(2) {
                        self.base_display.as_index()
                    } else {
                        (!self.base_display).as_index()
                    }
                }
            },
            Stage::Boost(_) | Stage::Done => self.opinion.as_index(),
        }
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        debug_assert_eq!(observed.len(), 2);
        match self.stage {
            Stage::Listening => {
                self.diff += observed[1] as i64 - observed[0] as i64;
                self.round_in_stage += 1;
                if self.round_in_stage >= 2 * self.params.phase_len() {
                    let weak = match self.diff.cmp(&0) {
                        std::cmp::Ordering::Greater => Opinion::One,
                        std::cmp::Ordering::Less => Opinion::Zero,
                        std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
                    };
                    self.weak = Some(weak);
                    self.opinion = weak;
                    self.stage = Stage::Boost(0);
                    self.round_in_stage = 0;
                    self.mem = [0, 0];
                }
            }
            Stage::Boost(subphase) => {
                self.mem[0] += observed[0];
                self.mem[1] += observed[1];
                self.round_in_stage += 1;
                let len = if subphase < self.params.num_short_subphases() {
                    self.params.subphase_len()
                } else {
                    self.params.final_subphase_len()
                };
                if self.round_in_stage >= len {
                    self.opinion = self.majority_of_mem(rng);
                    self.mem = [0, 0];
                    self.round_in_stage = 0;
                    if subphase >= self.params.num_short_subphases() {
                        self.stage = Stage::Done;
                    } else {
                        self.stage = Stage::Boost(subphase + 1);
                    }
                }
            }
            Stage::Done => {}
        }
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }

    /// Stage numbering for traces: Listening = 0, Boost(k) = 2 + k,
    /// Done = `u32::MAX`. Stage 1 is left unused so boost stages line up
    /// with plain SF's numbering.
    fn stage_id(&self) -> u32 {
        match self.stage {
            Stage::Listening => 0,
            Stage::Boost(k) => u32::try_from(k.saturating_add(2))
                .unwrap_or(u32::MAX)
                .min(u32::MAX - 1),
            Stage::Done => u32::MAX,
        }
    }

    fn weak_opinion(&self) -> Option<Opinion> {
        self.weak
    }

    /// Trend-change fault hook: the environment revises the ground truth
    /// (only sources carry a preference to flip).
    fn flip_source_preference(&mut self) -> bool {
        if let Role::Source(pref) = self.role {
            self.role = Role::Source(!pref);
            true
        } else {
            false
        }
    }
}

impl np_engine::snapshot::SnapshotAgent for AltSfAgent {
    const SNAP_TAG: &'static str = "sf-alt-agent/v1";

    fn encode_agent(&self, w: &mut np_engine::snapshot::SnapWriter) {
        w.put_role(self.role);
        self.params.encode_snap(w);
        match self.stage {
            Stage::Listening => w.put_u8(0),
            Stage::Boost(k) => {
                w.put_u8(1);
                w.put_u64(k);
            }
            Stage::Done => w.put_u8(2),
        }
        w.put_u64(self.round_in_stage);
        w.put_opinion(self.base_display);
        w.put_i64(self.diff);
        w.put_opt_opinion(self.weak);
        w.put_opinion(self.opinion);
        w.put_u64(self.mem[0]);
        w.put_u64(self.mem[1]);
    }

    fn decode_agent(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        let role = r.take_role()?;
        let params = SfParams::decode_snap(r)?;
        let stage = match r.take_u8()? {
            0 => Stage::Listening,
            1 => Stage::Boost(r.take_u64()?),
            2 => Stage::Done,
            x => {
                return Err(np_engine::EngineError::BadSnapshot {
                    detail: format!("invalid SF-ALT stage byte {x}"),
                })
            }
        };
        Ok(AltSfAgent {
            role,
            params,
            stage,
            round_in_stage: r.take_u64()?,
            base_display: r.take_opinion()?,
            diff: r.take_i64()?,
            weak: r.take_opt_opinion()?,
            opinion: r.take_opinion()?,
            mem: [r.take_u64()?, r.take_u64()?],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::channel::ChannelKind;
    use np_engine::population::PopulationConfig;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    fn params(n: usize, h: usize, delta: f64) -> SfParams {
        let config = PopulationConfig::new(n, 0, 1, h).unwrap();
        SfParams::derive(&config, delta, 1.0).unwrap()
    }

    #[test]
    fn non_source_alternates_displays() {
        let proto = AlternatingSourceFilter::new(params(8, 8, 0.1));
        let mut rng = StreamRng::seed_from_u64(0);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        let first = agent.display(&mut rng);
        agent.update(&[4, 4], &mut rng);
        let second = agent.display(&mut rng);
        assert_ne!(first, second, "display must alternate");
        agent.update(&[4, 4], &mut rng);
        assert_eq!(agent.display(&mut rng), first);
    }

    #[test]
    fn initial_display_coin_is_fair() {
        let proto = AlternatingSourceFilter::new(params(8, 8, 0.1));
        let mut ones = 0;
        for seed in 0..400 {
            let mut rng = StreamRng::seed_from_u64(seed);
            let agent = proto.init_agent(Role::NonSource, &mut rng);
            ones += agent.display(&mut rng);
        }
        assert!((120..280).contains(&ones), "biased coin: {ones}/400");
    }

    #[test]
    fn sources_display_preference_throughout_listening() {
        let proto = AlternatingSourceFilter::new(params(8, 8, 0.1));
        let mut rng = StreamRng::seed_from_u64(1);
        let mut agent = proto.init_agent(Role::Source(Opinion::One), &mut rng);
        for _ in 0..5 {
            assert_eq!(agent.display(&mut rng), 1);
            agent.update(&[4, 4], &mut rng);
        }
    }

    #[test]
    fn evidence_accumulates_signed_difference() {
        let proto = AlternatingSourceFilter::new(params(8, 8, 0.1));
        let mut rng = StreamRng::seed_from_u64(2);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        agent.update(&[2, 6], &mut rng);
        assert_eq!(agent.evidence(), 4);
        agent.update(&[7, 1], &mut rng);
        assert_eq!(agent.evidence(), -2);
        assert!(agent.weak_opinion().is_none());
    }

    #[test]
    fn weak_opinion_is_sign_of_evidence() {
        let p = params(8, 8, 0.1).with_m(8).unwrap(); // phase_len = 1, listening = 2 rounds
        let proto = AlternatingSourceFilter::new(p);
        let mut rng = StreamRng::seed_from_u64(3);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        agent.update(&[1, 7], &mut rng);
        agent.update(&[3, 5], &mut rng);
        assert_eq!(agent.weak_opinion(), Some(Opinion::One));
        assert_eq!(agent.opinion(), Opinion::One);
    }

    #[test]
    fn converges_single_source_h_equals_n() {
        let n = 256;
        let p = params(n, n, 0.2);
        let config = PopulationConfig::new(n, 0, 1, n).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let mut world = World::new(
            &AlternatingSourceFilter::new(p),
            config,
            &noise,
            ChannelKind::Aggregated,
            7,
        )
        .unwrap();
        world.run(p.total_rounds());
        assert!(world.is_consensus(), "{}/{n}", world.correct_count());
        assert!(world.iter_agents().all(|a| a.is_done()));
    }

    #[test]
    fn converges_with_conflicting_sources() {
        // c₁ = 2: SF-ALT pays extra background variance relative to SF
        // (see module docs), so at this small n the default budget leaves
        // a few percent failure probability per run.
        let n = 256;
        let config = PopulationConfig::new(n, 2, 3, n).unwrap();
        let p = SfParams::derive(&config, 0.15, 2.0).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.15).unwrap();
        let mut world = World::new(
            &AlternatingSourceFilter::new(p),
            config,
            &noise,
            ChannelKind::Aggregated,
            9,
        )
        .unwrap();
        world.run(p.total_rounds());
        assert!(world.is_consensus());
    }

    #[test]
    fn accessors() {
        let p = params(8, 8, 0.1);
        let proto = AlternatingSourceFilter::new(p);
        assert_eq!(proto.alphabet_size(), 2);
        assert_eq!(proto.params(), &p);
    }
}
