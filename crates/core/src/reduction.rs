//! Simulation with artificial noise (Definition 6 / Theorem 8).
//!
//! [`WithArtificialNoise`] wraps any protocol `A` so that every received
//! message is re-randomized through a stochastic matrix `P` before `A` sees
//! it. When `P` is the artificial noise derived from the real channel `N`
//! ([`np_linalg::noise::NoiseMatrix::artificial_noise`]), the wrapped
//! protocol experiences an end-to-end channel distributed exactly as the
//! `f(δ)`-uniform matrix `T = N·P` — reducing the general δ-upper-bounded
//! case to the uniform case the protocols are analyzed under.
//!
//! Because the engine delivers observations as per-symbol *counts*, the
//! per-message re-randomization becomes a multinomial split: the `c_σ`
//! messages received as `σ` scatter into new symbols as
//! `Multinomial(c_σ, P_σ)`. Each underlying message is transformed
//! independently with the correct row distribution, so this is exactly
//! Definition 6.

use np_engine::opinion::Opinion;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use np_linalg::noise::NoiseMatrix;
use np_stats::multinomial;

/// A protocol adaptor applying artificial noise `P` to all incoming
/// observations (Definition 6).
///
/// # Example
///
/// Run SF under an *asymmetric* binary channel by uniformizing it first:
///
/// ```
/// use noisy_pull::{params::SfParams, reduction::WithArtificialNoise, sf::SourceFilter};
/// use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
/// use np_linalg::noise::NoiseMatrix;
///
/// // The real channel: asymmetric, 0.2-upper-bounded.
/// let real = NoiseMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]])?;
/// let reduction = real.artificial_noise()?;
///
/// // SF must be parameterized with the *uniformized* level f(δ).
/// let config = PopulationConfig::new(256, 0, 1, 256)?;
/// let params = SfParams::derive(&config, reduction.uniform_level(), 1.0)?;
/// let protocol = WithArtificialNoise::new(
///     SourceFilter::new(params),
///     reduction.artificial().clone(),
/// )?;
///
/// let mut world = World::new(&protocol, config, &real, ChannelKind::Aggregated, 3)?;
/// world.run(params.total_rounds());
/// assert!(world.is_consensus());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct WithArtificialNoise<A> {
    inner: A,
    artificial: NoiseMatrix,
}

impl<A: Protocol> WithArtificialNoise<A> {
    /// Wraps `inner` so its observations pass through `artificial` first.
    ///
    /// # Errors
    ///
    /// Returns [`np_engine::EngineError::AlphabetMismatch`] if the matrix
    /// dimension differs from the protocol's alphabet.
    pub fn new(inner: A, artificial: NoiseMatrix) -> np_engine::Result<Self> {
        if inner.alphabet_size() != artificial.dim() {
            return Err(np_engine::EngineError::AlphabetMismatch {
                protocol: inner.alphabet_size(),
                noise: artificial.dim(),
            });
        }
        Ok(WithArtificialNoise { inner, artificial })
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The artificial-noise matrix `P`.
    pub fn artificial(&self) -> &NoiseMatrix {
        &self.artificial
    }
}

/// Agent state for [`WithArtificialNoise`]: the inner agent plus the rows
/// of `P`.
#[derive(Debug, Clone)]
pub struct ArtificialNoiseAgent<S> {
    inner: S,
    rows: std::sync::Arc<Vec<Vec<f64>>>,
    scratch: Vec<u64>,
    scattered: Vec<u64>,
}

impl<S> ArtificialNoiseAgent<S> {
    /// The wrapped agent state (e.g. to read an
    /// [`crate::sf::SfAgent::weak_opinion`]).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped agent state (e.g. to apply adversarial
    /// corruption through the wrapper).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }
}

impl<A: Protocol> Protocol for WithArtificialNoise<A> {
    type Agent = ArtificialNoiseAgent<A::Agent>;

    fn alphabet_size(&self) -> usize {
        self.inner.alphabet_size()
    }

    fn init_agent(&self, role: np_engine::population::Role, rng: &mut StreamRng) -> Self::Agent {
        let d = self.artificial.dim();
        let rows: Vec<Vec<f64>> = (0..d)
            .map(|s| self.artificial.observation_distribution(s).to_vec())
            .collect();
        ArtificialNoiseAgent {
            inner: self.inner.init_agent(role, rng),
            rows: std::sync::Arc::new(rows),
            scratch: vec![0; d],
            scattered: vec![0; d],
        }
    }
}

impl<S: AgentState> AgentState for ArtificialNoiseAgent<S> {
    fn display(&self, rng: &mut StreamRng) -> usize {
        self.inner.display(rng)
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        debug_assert_eq!(observed.len(), self.rows.len());
        // Re-randomize each received message through P: the c_σ messages
        // received as σ scatter as Multinomial(c_σ, P_σ).
        self.scratch.fill(0);
        for (sigma, &count) in observed.iter().enumerate() {
            if count == 0 {
                continue;
            }
            multinomial::sample_into(rng, count, &self.rows[sigma], &mut self.scattered);
            for (slot, c) in self.scratch.iter_mut().zip(&self.scattered) {
                *slot += c;
            }
        }
        let modified = std::mem::take(&mut self.scratch);
        self.inner.update(&modified, rng);
        self.scratch = modified;
    }

    fn opinion(&self) -> Opinion {
        self.inner.opinion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SfParams;
    use crate::sf::SourceFilter;
    use np_engine::channel::ChannelKind;
    use np_engine::population::{PopulationConfig, Role};
    use np_engine::world::World;
    use rand::SeedableRng;

    #[test]
    fn rejects_mismatched_alphabet() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
        let p4 = NoiseMatrix::uniform(4, 0.1).unwrap();
        assert!(WithArtificialNoise::new(SourceFilter::new(params), p4).is_err());
    }

    #[test]
    fn identity_artificial_noise_is_transparent() {
        // With P = I the wrapper must behave exactly like the inner
        // protocol under the same seed.
        let config = PopulationConfig::new(256, 0, 1, 256).unwrap();
        let params = SfParams::derive(&config, 0.2, 2.0).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();

        let mut plain = World::new(
            &SourceFilter::new(params),
            config,
            &noise,
            ChannelKind::Aggregated,
            77,
        )
        .unwrap();
        plain.run(params.total_rounds());

        // NOTE: the wrapper consumes RNG draws even for P = I (multinomial
        // splits are still sampled), so trajectories differ; compare
        // outcomes statistically instead: both must converge.
        let wrapped_protocol =
            WithArtificialNoise::new(SourceFilter::new(params), NoiseMatrix::noiseless(2)).unwrap();
        let mut wrapped = World::new(
            &wrapped_protocol,
            config,
            &noise,
            ChannelKind::Aggregated,
            77,
        )
        .unwrap();
        wrapped.run(params.total_rounds());

        assert!(plain.is_consensus());
        assert!(wrapped.is_consensus());
    }

    #[test]
    fn deterministic_artificial_noise_permutes_counts() {
        // P = swap matrix: observation counts are exchanged before the
        // inner protocol sees them.
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0)
            .unwrap()
            .with_m(16)
            .unwrap();
        let swap = NoiseMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let proto = WithArtificialNoise::new(SourceFilter::new(params), swap).unwrap();
        let mut rng = StreamRng::seed_from_u64(1);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        // Phase 0 lasts two rounds (m = 16, h = 8). The observation
        // [0 zeros, 8 ones] arrives swapped as [8, 0]: counter1 stays 0.
        agent.update(&[0, 8], &mut rng);
        assert_eq!(agent.inner().counter1(), 0);
        // And [8, 0] arrives as [0, 8]: counter1 += 8.
        agent.update(&[8, 0], &mut rng);
        assert_eq!(agent.inner().counter1(), 8);
    }

    #[test]
    fn sf_converges_under_asymmetric_noise_via_reduction() {
        let real = NoiseMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        let reduction = real.artificial_noise().unwrap();
        let config = PopulationConfig::new(256, 0, 1, 256).unwrap();
        let params = SfParams::derive(&config, reduction.uniform_level(), 1.0).unwrap();
        let protocol =
            WithArtificialNoise::new(SourceFilter::new(params), reduction.artificial().clone())
                .unwrap();
        let mut world = World::new(&protocol, config, &real, ChannelKind::Aggregated, 21).unwrap();
        world.run(params.total_rounds());
        assert!(
            world.is_consensus(),
            "correct: {}/256",
            world.correct_count()
        );
    }

    #[test]
    fn accessors() {
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        let params = SfParams::derive(&config, 0.1, 1.0).unwrap();
        let p = NoiseMatrix::uniform(2, 0.3).unwrap();
        let proto = WithArtificialNoise::new(SourceFilter::new(params), p.clone()).unwrap();
        assert_eq!(proto.alphabet_size(), 2);
        assert_eq!(proto.artificial(), &p);
        assert_eq!(proto.inner().params(), &params);
        let mut rng = StreamRng::seed_from_u64(0);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        let _ = agent.inner_mut();
    }
}
