//! `noisy-pull` — the protocols of *Fast and Robust Information Spreading
//! in the Noisy PULL Model* (D'Archivio, Korman, Natale, Vacus;
//! PODC 2025 / arXiv:2411.02560).
//!
//! A population of `n` agents communicates under the noisy PULL(h) model
//! (see [`np_engine`]): each round every agent passively observes `h`
//! uniformly random agents through a noisy channel. A few *source* agents
//! hold (possibly conflicting) preferences; everyone must converge on the
//! preference of the strict majority of sources — fast, despite every
//! single observation being unreliable.
//!
//! This crate provides the paper's two protocols and their machinery:
//!
//! * [`sf::SourceFilter`] — Algorithm SF: 1-bit messages, synchronous
//!   start, convergence in `O(m/h)` rounds with `m` from Eq. (19)
//!   (Theorem 4). At `h = n` and constant `δ`, that is `O(log n)` rounds —
//!   exponentially faster than the `Ω(n)` lower bound for `h = O(1)`.
//! * [`ssf::SelfStabilizingSourceFilter`] — Algorithm SSF: 2-bit messages,
//!   no synchronization, self-stabilizing against arbitrary corruption of
//!   internal states (Theorem 5). Corruption strategies for experiments
//!   live in [`adversary`].
//! * [`reduction::WithArtificialNoise`] — the Theorem 8 adaptor that
//!   uniformizes any δ-upper-bounded channel by injecting artificial noise
//!   `P = N⁻¹·T`, so both protocols run under arbitrary (non-uniform)
//!   noise matrices.
//! * [`params`] — the `m` formulas (Eqs. (19) and (30)) and round
//!   schedules.
//! * [`theory`] — closed forms for the Theorem 3 lower bound and the
//!   Theorem 4/5 upper bounds, for overlaying predictions on measurements.
//! * [`memory`] — information-theoretic state-size accounting for the
//!   theorems' `O(log T + log h)` bits-per-agent claim.
//! * [`sf_alternating`] — the "more natural" alternating-display variant
//!   from the Remark in §2.1, implemented so its plausibility can be
//!   tested empirically.
//! * [`columnar`] — struct-of-arrays ports of SF, SSF and SF-ALT for the
//!   engine's chunk-parallel hot path, bit-identical to the scalar
//!   implementations on the same seed.
//!
//! # Quickstart
//!
//! Spread a bit from a single source to 512 agents, each observing the
//! whole population through a 20%-noise channel, in a logarithmic number
//! of rounds:
//!
//! ```
//! use noisy_pull::{params::SfParams, sf::SourceFilter};
//! use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
//! use np_linalg::noise::NoiseMatrix;
//!
//! let n = 512;
//! let config = PopulationConfig::new(n, 0, 1, n)?; // one source, h = n
//! let params = SfParams::derive(&config, 0.2, 1.0)?;
//! let noise = NoiseMatrix::uniform(2, 0.2)?;
//!
//! let mut world = World::new(
//!     &SourceFilter::new(params),
//!     config,
//!     &noise,
//!     ChannelKind::Aggregated,
//!     42,
//! )?;
//! world.run(params.total_rounds());
//!
//! assert!(world.is_consensus());
//! println!("consensus after {} rounds", world.round());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable errors (experiment workers
// would die mid-batch); tests are exempt. `.expect()` documenting an
// infallible-by-construction case is allowed but audited by
// `cargo xtask check`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;

pub mod adversary;
pub mod columnar;
pub mod counts;
pub mod memory;
pub mod params;
pub mod reduction;
pub mod sf;
pub mod sf_alternating;
pub mod ssf;
pub mod theory;

pub use error::CoreError;

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
