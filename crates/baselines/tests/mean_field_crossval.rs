//! Exact-channel cross-validation of the mean-field counts backend.
//!
//! The SF/SSF suite in `crates/core/tests/mean_field_crossval.rs` covers
//! [`ChannelKind::Aggregated`]; this file covers [`ChannelKind::Exact`].
//! Under with-replacement sampling the two kinds draw from the same
//! per-agent observation law (Multinomial(h, q) with q the collapsed
//! display law), so the mean-field backend — which always works from the
//! collapsed law — must reproduce Exact-channel per-agent distributions
//! too. h-majority is the probe protocol: its per-agent Exact run is
//! cheap at small `h`, and its single-round transition exercises
//! `majority_prob` directly.

use np_baselines::majority::HMajority;
use np_engine::channel::ChannelKind;
use np_engine::counts::CountsWorld;
use np_engine::opinion::Opinion;
use np_engine::population::PopulationConfig;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;
use np_stats::ks::ks2_p_value;

const SEEDS: u64 = 64;
const P_THRESHOLD: f64 = 0.01;
const ROUNDS: u64 = 24;

fn setup() -> (PopulationConfig, NoiseMatrix) {
    // 40 one-sources out of 128, h = 8, 10% symmetric noise: enough
    // stubborn pull to drift toward One, small enough h that the
    // per-round correct count keeps real spread at every probe.
    let config = PopulationConfig::new(128, 0, 40, 8).expect("valid population");
    let noise = NoiseMatrix::uniform(2, 0.1).expect("valid noise");
    (config, noise)
}

/// Correct-opinion counts per round plus the first all-correct round
/// (budget + 1 when never reached).
fn stats_from_counts(correct: &[usize], n: usize) -> Vec<f64> {
    let settle = correct
        .iter()
        .position(|&c| c == n)
        .map_or(correct.len() as f64 + 1.0, |idx| idx as f64 + 1.0);
    vec![
        correct[0] as f64,
        correct[1] as f64,
        correct[3] as f64,
        settle,
    ]
}

fn per_agent_exact(seed: u64) -> Vec<f64> {
    let (config, noise) = setup();
    let n = config.n();
    let mut world =
        World::new(&HMajority, config, &noise, ChannelKind::Exact, seed).expect("valid world");
    world.record_series();
    world.run(ROUNDS);
    let correct = world
        .series()
        .expect("series recorded")
        .counts(Opinion::One);
    stats_from_counts(&correct, n)
}

fn mean_field(seed: u64) -> Vec<f64> {
    let (config, noise) = setup();
    let n = config.n();
    let mut world = CountsWorld::new(&HMajority, config, &noise, seed).expect("valid world");
    world.record_series();
    world.run(ROUNDS);
    let correct = world
        .series()
        .expect("series recorded")
        .counts(Opinion::One);
    stats_from_counts(&correct, n)
}

#[test]
fn majority_mean_field_matches_exact_channel() {
    let agent_runs: Vec<Vec<f64>> = (0..SEEDS).map(per_agent_exact).collect();
    let field_runs: Vec<Vec<f64>> = (0..SEEDS).map(|s| mean_field(1000 + s)).collect();
    for stat in 0..agent_runs[0].len() {
        let xs: Vec<f64> = agent_runs.iter().map(|r| r[stat]).collect();
        let ys: Vec<f64> = field_runs.iter().map(|r| r[stat]).collect();
        let p = ks2_p_value(&xs, &ys).expect("valid samples");
        assert!(
            p > P_THRESHOLD,
            "h-majority exact-channel crossval: statistic {stat} KS p = {p:.4}",
        );
    }
}
