//! Classic "copy the informed agent" rumor spreading, run naively under
//! noise.
//!
//! Without noise, this is the textbook PULL rumor-spreading protocol
//! \[16\]: messages carry an *informed* flag and a value; an uninformed
//! agent that samples an informed one copies the value and becomes
//! informed itself, giving `O(log n)` spreading time.
//!
//! Under noise, the informed flag itself gets corrupted. With `Θ(n)`
//! uninformed agents each round, even a small flip probability mints
//! `Θ(δ·n·h)` *falsely informed* observations carrying coin-flip values —
//! vastly outnumbering the genuinely informed ones in the early rounds.
//! The population "informs" itself with garbage and locks it in: footnote
//! 2 of the paper ("if messages are noisy then this bit cannot be
//! trusted"), made executable.
//!
//! Message encoding matches [`noisy_pull`'s SSF]: `index = 2·informed +
//! value`.

use np_engine::opinion::Opinion;
use np_engine::population::Role;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use rand::Rng;

/// The trusting-copy rumor-spreading baseline (4-symbol alphabet).
///
/// # Example
///
/// ```
/// use np_baselines::trusting_copy::TrustingCopy;
/// use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
/// use np_linalg::noise::NoiseMatrix;
///
/// // Noiseless: classic rumor spreading, logarithmic convergence.
/// let config = PopulationConfig::new(256, 0, 1, 8)?;
/// let noise = NoiseMatrix::uniform(4, 0.0)?;
/// let mut world = World::new(&TrustingCopy, config, &noise, ChannelKind::Aggregated, 1)?;
/// let outcome = world.run_until_consensus(200);
/// assert!(outcome.converged());
/// assert!(outcome.rounds().unwrap() < 50);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrustingCopy;

/// Per-agent state of the trusting-copy baseline.
#[derive(Debug, Clone)]
pub struct TrustingCopyAgent {
    role: Role,
    informed: bool,
    opinion: Opinion,
}

impl TrustingCopyAgent {
    /// Whether the agent believes it knows the rumor.
    pub fn is_informed(&self) -> bool {
        self.informed
    }
}

impl Protocol for TrustingCopy {
    type Agent = TrustingCopyAgent;

    fn alphabet_size(&self) -> usize {
        4
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> TrustingCopyAgent {
        match role {
            Role::Source(pref) => TrustingCopyAgent {
                role,
                informed: true,
                opinion: pref,
            },
            Role::NonSource => TrustingCopyAgent {
                role,
                informed: false,
                opinion: Opinion::from_bool(rng.gen()),
            },
        }
    }
}

impl AgentState for TrustingCopyAgent {
    fn display(&self, _rng: &mut StreamRng) -> usize {
        2 * usize::from(self.informed) + self.opinion.as_index()
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        if self.role.is_source() || self.informed {
            // Sources and already-informed agents are settled.
            return;
        }
        // Count observations claiming to be informed: symbols 2 = (1,0)
        // and 3 = (1,1). Copy a uniformly random one of them.
        let informed_zero = observed[2];
        let informed_one = observed[3];
        let total = informed_zero + informed_one;
        if total == 0 {
            return;
        }
        let pick = rng.gen_range(0..total);
        self.opinion = Opinion::from_bool(pick >= informed_zero);
        self.informed = true;
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::channel::ChannelKind;
    use np_engine::population::PopulationConfig;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    #[test]
    fn sources_start_informed_and_settled() {
        let mut rng = StreamRng::seed_from_u64(0);
        let mut agent = TrustingCopy.init_agent(Role::Source(Opinion::One), &mut rng);
        assert!(agent.is_informed());
        assert_eq!(agent.display(&mut rng), 3);
        agent.update(&[0, 0, 99, 0], &mut rng);
        assert_eq!(agent.opinion(), Opinion::One);
    }

    #[test]
    fn uninformed_copies_informed_observation() {
        let mut rng = StreamRng::seed_from_u64(1);
        let mut agent = TrustingCopy.init_agent(Role::NonSource, &mut rng);
        assert!(!agent.is_informed());
        // No informed observations: stays uninformed.
        agent.update(&[5, 5, 0, 0], &mut rng);
        assert!(!agent.is_informed());
        // One informed (1,1): copies value 1, becomes informed.
        agent.update(&[5, 5, 0, 1], &mut rng);
        assert!(agent.is_informed());
        assert_eq!(agent.opinion(), Opinion::One);
        // Once informed, further observations are ignored.
        agent.update(&[0, 0, 99, 0], &mut rng);
        assert_eq!(agent.opinion(), Opinion::One);
    }

    #[test]
    fn noiseless_spreading_is_logarithmic() {
        let config = PopulationConfig::new(1024, 0, 1, 4).unwrap();
        let noise = NoiseMatrix::uniform(4, 0.0).unwrap();
        let mut world =
            World::new(&TrustingCopy, config, &noise, ChannelKind::Aggregated, 2).unwrap();
        let outcome = world.run_until_consensus(500);
        assert!(outcome.converged());
        // ~log_{1+h'}(n) + coupon-collector tail; generous cap.
        assert!(outcome.rounds().unwrap() < 60, "rounds: {outcome:?}");
    }

    #[test]
    fn noise_poisons_the_informed_flag() {
        // With δ = 0.1 on the 4-symbol alphabet, false informed tags vastly
        // outnumber the single genuine source early on. The population
        // must NOT reliably reach correct consensus; typically about half
        // of the agents lock in the wrong value.
        let mut failures = 0;
        for seed in 0..8 {
            let config = PopulationConfig::new(512, 0, 1, 8).unwrap();
            let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
            let mut world =
                World::new(&TrustingCopy, config, &noise, ChannelKind::Aggregated, seed).unwrap();
            let outcome = world.run_until_consensus(500);
            if !outcome.converged() {
                failures += 1;
                // Spot-check the failure mode: a large wrong faction.
                let correct = world.correct_count();
                assert!(correct < 512, "timed out yet all correct?");
            }
        }
        assert!(
            failures >= 6,
            "trusting copy unexpectedly robust: {failures}/8 failures"
        );
    }
}
