//! The zealot voter model: copy one random observation; zealots (sources)
//! never budge.
//!
//! This is the dynamics used in Gelblum et al. \[12\] to argue that a
//! single informed "crazy ant" can *eventually* steer the group: the
//! stationary distribution favors the zealots' opinion, but convergence is
//! slow (coupon-collector-like mixing) and, under noise, the instantaneous
//! configuration keeps fluctuating. The paper's question — "can it happen
//! *fast*?" — is answered by SF/SSF, with this protocol as the natural
//! reference point.

use np_engine::opinion::Opinion;
use np_engine::population::Role;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use rand::Rng;

/// The zealot voter protocol. Binary alphabet; sources display and keep
/// their preference, non-sources copy one uniformly chosen observation per
/// round.
///
/// # Example
///
/// ```
/// use np_baselines::voter::ZealotVoter;
/// use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
/// use np_linalg::noise::NoiseMatrix;
///
/// let config = PopulationConfig::new(64, 0, 16, 4)?;
/// let noise = NoiseMatrix::uniform(2, 0.0)?; // noiseless
/// let mut world = World::new(&ZealotVoter, config, &noise, ChannelKind::Aggregated, 1)?;
/// let outcome = world.run_until_consensus(50_000);
/// assert!(outcome.converged()); // noiseless zealot voter eventually absorbs
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ZealotVoter;

/// Per-agent state of the zealot voter.
#[derive(Debug, Clone)]
pub struct VoterAgent {
    role: Role,
    opinion: Opinion,
}

impl VoterAgent {
    /// The agent's role.
    pub fn role(&self) -> Role {
        self.role
    }
}

impl Protocol for ZealotVoter {
    type Agent = VoterAgent;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> VoterAgent {
        VoterAgent {
            role,
            opinion: role.preference().unwrap_or(Opinion::from_bool(rng.gen())),
        }
    }
}

impl AgentState for VoterAgent {
    fn display(&self, _rng: &mut StreamRng) -> usize {
        self.opinion.as_index()
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        if let Role::Source(pref) = self.role {
            // Zealot: immune to influence.
            self.opinion = pref;
            return;
        }
        // Copy one uniformly chosen observation: with counts (c0, c1), the
        // chosen sample is 1 with probability c1/(c0+c1).
        let total = observed[0] + observed[1];
        if total == 0 {
            return;
        }
        let pick = rng.gen_range(0..total);
        self.opinion = Opinion::from_bool(pick >= observed[0]);
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::channel::ChannelKind;
    use np_engine::population::PopulationConfig;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    #[test]
    fn zealots_never_change() {
        let mut rng = StreamRng::seed_from_u64(0);
        let mut agent = ZealotVoter.init_agent(Role::Source(Opinion::One), &mut rng);
        agent.update(&[100, 0], &mut rng);
        assert_eq!(agent.opinion(), Opinion::One);
        assert_eq!(agent.role(), Role::Source(Opinion::One));
    }

    #[test]
    fn non_source_copies_unanimous_observation() {
        let mut rng = StreamRng::seed_from_u64(1);
        let mut agent = ZealotVoter.init_agent(Role::NonSource, &mut rng);
        agent.update(&[0, 5], &mut rng);
        assert_eq!(agent.opinion(), Opinion::One);
        agent.update(&[5, 0], &mut rng);
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn copy_probability_is_proportional_to_counts() {
        let mut rng = StreamRng::seed_from_u64(2);
        let mut ones = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            let mut agent = ZealotVoter.init_agent(Role::NonSource, &mut rng);
            agent.update(&[3, 1], &mut rng);
            ones += agent.opinion().as_index() as u32;
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn empty_observation_keeps_opinion() {
        let mut rng = StreamRng::seed_from_u64(3);
        let mut agent = ZealotVoter.init_agent(Role::NonSource, &mut rng);
        let before = agent.opinion();
        agent.update(&[0, 0], &mut rng);
        assert_eq!(agent.opinion(), before);
    }

    #[test]
    fn noiseless_voter_converges_with_many_zealots() {
        let config = PopulationConfig::new(32, 0, 8, 4).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.0).unwrap();
        let mut world =
            World::new(&ZealotVoter, config, &noise, ChannelKind::Aggregated, 5).unwrap();
        let outcome = world.run_until_consensus(20_000);
        assert!(outcome.converged());
    }

    #[test]
    fn noisy_voter_does_not_stabilize() {
        // Under constant noise, the voter configuration keeps churning:
        // full consensus states are not absorbing, so even if hit, they are
        // immediately lost. Check that the fraction of correct agents stays
        // far from 1 over a long window.
        let config = PopulationConfig::new(128, 0, 1, 4).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let mut world =
            World::new(&ZealotVoter, config, &noise, ChannelKind::Aggregated, 6).unwrap();
        world.run(800);
        let mut max_correct = 0;
        for _ in 0..200 {
            world.step();
            max_correct = max_correct.max(world.correct_count());
        }
        assert!(
            max_correct < 128,
            "noisy voter should not hold full consensus"
        );
    }
}
