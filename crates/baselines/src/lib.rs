//! Baseline spreading protocols for the noisy PULL model.
//!
//! These are the comparison points for the paper's SF/SSF protocols
//! (experiment EXP-BASE in `DESIGN.md`):
//!
//! * [`voter::ZealotVoter`] — the zealot voter model of Gelblum et al.
//!   \[12\] and Mobilia et al. \[41\]: sources are stubborn, everyone else
//!   copies one uniformly chosen observation per round. Converges
//!   *eventually* (the paper's motivating prior work showed steady-state
//!   correctness) but slowly and unreliably under noise.
//! * [`majority::HMajority`] — repeated local majority over the `h`
//!   observations. Amplifies whatever display majority exists; it cannot
//!   extract a minority source signal, which is exactly the failure the
//!   paper's "listening phases" repair.
//! * [`trusting_copy::TrustingCopy`] — classic rumor spreading with an
//!   "informed" flag \[16\]: adopt the value of any observation that
//!   claims to be informed. Optimal without noise; poisoned by the first
//!   corrupted tag when noise is present (footnote 2 of the paper: the
//!   flag "cannot be trusted").
//! * [`mean_estimator::MeanEstimator`] — ablation for SF's neutral
//!   listening phases: agents estimate the all-time mean of displayed
//!   values and threshold at ½, *without* the phase-0/phase-1 neutrality
//!   choreography. The self-referential feedback (agents display the
//!   opinions they are estimating) keeps the estimate pinned to the
//!   initial majority.
//!
//! One *contrast-model* protocol complements them:
//!
//! * [`push_spreading::PushSpreading`] — a simplified noisy **PUSH**
//!   spreading protocol in the spirit of Feinerman–Haeupler–Korman \[18\],
//!   demonstrating the exponential PULL/PUSH separation the paper's §1.5
//!   describes: with reliable reception events, `h = 1` suffices for
//!   polylogarithmic spreading.
//!
//! All PULL baselines implement [`np_engine::protocol::Protocol`] and run
//! on the same worlds as SF/SSF; the PUSH protocol runs on
//! [`np_engine::push::PushWorld`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable errors (experiment workers
// would die mid-batch); tests are exempt. `.expect()` documenting an
// infallible-by-construction case is allowed but audited by
// `cargo xtask check`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod majority;
pub mod mean_estimator;
pub mod push_spreading;
pub mod trusting_copy;
pub mod voter;
