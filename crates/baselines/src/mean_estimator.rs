//! Mean-estimator ablation: SF without its neutral listening phases.
//!
//! Each agent keeps lifetime totals of observed 0s and 1s, debiases the
//! noise (`q̂ = (p̂ − δ)/(1 − 2δ)` where `p̂` is the observed fraction of
//! 1s), and adopts opinion 1 iff the debiased estimate exceeds ½. Agents
//! display their current opinion throughout.
//!
//! The flaw this ablation demonstrates: the displayed population is not
//! neutral. Agents estimate the mean of a process their own (initially
//! random) opinions dominate, so the estimate tracks the initial opinion
//! split — `½ ± Θ(1/√n)` — while the sources shift it by only `Θ(s/n)`.
//! SF's phase-0/phase-1 choreography makes non-source displays cancel
//! exactly, leaving the source signal as the *only* systematic bias; this
//! protocol shows what happens without that cancellation.

use np_engine::opinion::Opinion;
use np_engine::population::Role;
use np_engine::protocol::{AgentState, Protocol};
use np_engine::streams::StreamRng;
use rand::Rng;

/// The mean-estimator ablation baseline. Binary alphabet.
///
/// # Example
///
/// ```
/// use np_baselines::mean_estimator::MeanEstimator;
/// use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
/// use np_linalg::noise::NoiseMatrix;
///
/// let config = PopulationConfig::new(64, 0, 1, 64)?;
/// let noise = NoiseMatrix::uniform(2, 0.1)?;
/// let proto = MeanEstimator::new(0.1);
/// let mut world = World::new(&proto, config, &noise, ChannelKind::Aggregated, 1)?;
/// world.run(100); // runs; reliable consensus is *not* expected
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanEstimator {
    delta: f64,
}

impl MeanEstimator {
    /// Creates the protocol; `delta` is the (known) uniform noise level
    /// used for debiasing.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ δ < ½`.
    pub fn new(delta: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&delta),
            "delta {delta} outside [0, 0.5)"
        );
        MeanEstimator { delta }
    }

    /// The noise level used for debiasing.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

/// Per-agent state of the mean estimator.
#[derive(Debug, Clone)]
pub struct MeanEstimatorAgent {
    role: Role,
    delta: f64,
    zeros: u64,
    ones: u64,
    opinion: Opinion,
}

impl MeanEstimatorAgent {
    /// The debiased estimate of the displayed-1 fraction, or `None` before
    /// any observation.
    pub fn estimate(&self) -> Option<f64> {
        let total = self.zeros + self.ones;
        if total == 0 {
            return None;
        }
        let p_hat = self.ones as f64 / total as f64;
        Some((p_hat - self.delta) / (1.0 - 2.0 * self.delta))
    }
}

impl Protocol for MeanEstimator {
    type Agent = MeanEstimatorAgent;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> MeanEstimatorAgent {
        MeanEstimatorAgent {
            role,
            delta: self.delta,
            zeros: 0,
            ones: 0,
            opinion: role.preference().unwrap_or(Opinion::from_bool(rng.gen())),
        }
    }
}

impl AgentState for MeanEstimatorAgent {
    fn display(&self, _rng: &mut StreamRng) -> usize {
        match self.role {
            Role::Source(pref) => pref.as_index(),
            Role::NonSource => self.opinion.as_index(),
        }
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        self.zeros += observed[0];
        self.ones += observed[1];
        if self.role.is_source() {
            // Sources keep their preference as opinion in this baseline.
            return;
        }
        match self.estimate() {
            Some(q) if q > 0.5 => self.opinion = Opinion::One,
            Some(q) if q < 0.5 => self.opinion = Opinion::Zero,
            Some(_) => self.opinion = Opinion::from_bool(rng.gen()),
            None => {}
        }
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::channel::ChannelKind;
    use np_engine::population::PopulationConfig;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "outside [0, 0.5)")]
    fn rejects_bad_delta() {
        let _ = MeanEstimator::new(0.5);
    }

    #[test]
    fn estimate_debiases_noise() {
        let mut rng = StreamRng::seed_from_u64(0);
        let proto = MeanEstimator::new(0.2);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        assert_eq!(agent.estimate(), None);
        // Observed fraction 0.2 equals the noise floor of an all-zero
        // population: estimate must be 0.
        agent.update(&[80, 20], &mut rng);
        let q = agent.estimate().unwrap();
        assert!(q.abs() < 1e-12, "estimate {q}");
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn opinion_follows_estimate() {
        let mut rng = StreamRng::seed_from_u64(1);
        let proto = MeanEstimator::new(0.0);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        agent.update(&[1, 9], &mut rng);
        assert_eq!(agent.opinion(), Opinion::One);
        // Totals are lifetime: need a lot of zeros to pull back.
        agent.update(&[98, 2], &mut rng);
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn sources_keep_preference() {
        let mut rng = StreamRng::seed_from_u64(2);
        let proto = MeanEstimator::new(0.1);
        let mut agent = proto.init_agent(Role::Source(Opinion::One), &mut rng);
        agent.update(&[100, 0], &mut rng);
        assert_eq!(agent.opinion(), Opinion::One);
        assert_eq!(proto.delta(), 0.1);
    }

    #[test]
    fn fails_to_spread_from_single_source() {
        // The ablation's point: without neutral phases the estimate tracks
        // the initial opinion split, not the source. Over several seeds the
        // protocol must not reliably reach correct consensus.
        let mut successes = 0;
        for seed in 0..8 {
            let config = PopulationConfig::new(256, 0, 1, 256).unwrap();
            let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
            let proto = MeanEstimator::new(0.2);
            let mut world =
                World::new(&proto, config, &noise, ChannelKind::Aggregated, seed).unwrap();
            if world.run_until_consensus(300).converged() {
                successes += 1;
            }
        }
        assert!(
            successes < 8,
            "mean estimator unexpectedly reliable ({successes}/8)"
        );
    }
}
