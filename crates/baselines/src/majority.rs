//! Repeated local majority over the `h` per-round observations.
//!
//! Majority dynamics converge extremely fast — to whichever opinion
//! already dominates the displays. With a handful of sources in a sea of
//! arbitrary initial opinions, the source signal (order `s/n` per
//! observation) is invisible to a single-round majority, so the population
//! locks into its initial majority regardless of the correct opinion. SF's
//! listening phases exist precisely to manufacture a population-wide bias
//! *before* switching to majority amplification; this baseline is that
//! amplification step alone.

use std::ops::Range;

use np_engine::opinion::Opinion;
use np_engine::population::{PopulationConfig, Role};
use np_engine::protocol::{AgentState, ColumnarProtocol, ColumnarState, Protocol};
use np_engine::streams::StreamRng;
use np_engine::streams::{RoundStreams, StreamStage};
use rand::Rng;

/// The h-majority baseline. Binary alphabet; sources display and keep
/// their preference, non-sources adopt the majority of each round's
/// observations (ties random).
///
/// # Example
///
/// ```
/// use np_baselines::majority::HMajority;
/// use np_engine::{channel::ChannelKind, population::PopulationConfig, world::World};
/// use np_linalg::noise::NoiseMatrix;
///
/// let config = PopulationConfig::new(64, 0, 1, 64)?;
/// let noise = NoiseMatrix::uniform(2, 0.1)?;
/// let mut world = World::new(&HMajority, config, &noise, ChannelKind::Aggregated, 2)?;
/// world.run(50);
/// // A single source cannot tip majority dynamics: on this seed the
/// // initial coin flips lock in the wrong side, so no consensus on 1.
/// assert!(!world.is_consensus());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HMajority;

/// Per-agent state of the h-majority baseline.
#[derive(Debug, Clone)]
pub struct MajorityAgent {
    role: Role,
    opinion: Opinion,
}

impl MajorityAgent {
    /// The agent's role.
    pub fn role(&self) -> Role {
        self.role
    }
}

impl Protocol for HMajority {
    type Agent = MajorityAgent;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> MajorityAgent {
        MajorityAgent {
            role,
            opinion: role.preference().unwrap_or(Opinion::from_bool(rng.gen())),
        }
    }
}

impl AgentState for MajorityAgent {
    fn display(&self, _rng: &mut StreamRng) -> usize {
        self.opinion.as_index()
    }

    fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
        if let Role::Source(pref) = self.role {
            self.opinion = pref;
            return;
        }
        self.opinion = match observed[1].cmp(&observed[0]) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
        };
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }

    /// Memoryless dynamics: every agent is always in the single stage 0.
    /// Stated explicitly (the trait default is the same) so the baseline
    /// documents its lack of phase structure next to SF's schedule.
    fn stage_id(&self) -> u32 {
        0
    }
}

/// Columnar h-majority: bit-identical to [`HMajority`] on the same world
/// arguments (see `noisy_pull::columnar` for the equivalence contract the
/// protocol ports share).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnarHMajority;

/// Struct-of-arrays population state of the columnar h-majority baseline.
#[derive(Debug, Clone)]
pub struct MajorityColumns {
    role: Vec<Role>,
    opinion: Vec<Opinion>,
}

/// Disjoint mutable chunk view over [`MajorityColumns`].
#[derive(Debug)]
pub struct MajorityChunkMut<'a> {
    role: &'a [Role],
    opinion: &'a mut [Opinion],
}

impl ColumnarProtocol for ColumnarHMajority {
    type State = MajorityColumns;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_state(&self, config: &PopulationConfig, streams: &RoundStreams) -> MajorityColumns {
        let n = config.n();
        let mut cols = MajorityColumns {
            role: Vec::with_capacity(n),
            opinion: Vec::with_capacity(n),
        };
        for (id, role) in config.iter_roles().enumerate() {
            // The scalar init evaluates `unwrap_or(coin)` eagerly, so the
            // coin is drawn for sources too; replicate that.
            let mut rng = streams.rng(id, StreamStage::Init);
            let coin = Opinion::from_bool(rng.gen());
            cols.role.push(role);
            cols.opinion.push(role.preference().unwrap_or(coin));
        }
        cols
    }
}

impl ColumnarState for MajorityColumns {
    type ChunkMut<'a>
        = MajorityChunkMut<'a>
    where
        Self: 'a;

    fn len(&self) -> usize {
        self.role.len()
    }

    fn display_chunk(&self, range: Range<usize>, out: &mut [usize], _streams: &RoundStreams) {
        for (slot, id) in out.iter_mut().zip(range) {
            *slot = self.opinion[id].as_index();
        }
    }

    fn display_chunk_packed(
        &self,
        range: Range<usize>,
        chunk: &mut np_engine::packed::PackedChunkMut<'_>,
        _streams: &RoundStreams,
    ) {
        debug_assert_eq!(chunk.start(), range.start);
        debug_assert_eq!(chunk.len(), range.len());
        // One plane (d = 2): the display is the opinion bit itself.
        for (w, opinions) in self.opinion[range].chunks(64).enumerate() {
            let mut bits = 0u64;
            for (b, &op) in opinions.iter().enumerate() {
                bits |= (op.as_index() as u64) << b;
            }
            chunk.set_plane_word(0, w, bits);
        }
    }

    fn chunks_mut(&mut self, chunk_len: usize) -> Vec<MajorityChunkMut<'_>> {
        let chunk_len = chunk_len.max(1);
        self.role
            .chunks(chunk_len)
            .zip(self.opinion.chunks_mut(chunk_len))
            .map(|(role, opinion)| MajorityChunkMut { role, opinion })
            .collect()
    }

    fn step_chunk(
        chunk: &mut MajorityChunkMut<'_>,
        range: Range<usize>,
        observed: &[u64],
        d: usize,
        streams: &RoundStreams,
        awake: Option<&[bool]>,
    ) {
        debug_assert_eq!(d, 2);
        for ((i, id), obs) in (0..chunk.role.len())
            .zip(range)
            .zip(observed.chunks_exact(d))
        {
            if awake.is_some_and(|mask| !mask[i]) {
                continue;
            }
            if let Role::Source(pref) = chunk.role[i] {
                chunk.opinion[i] = pref;
                continue;
            }
            chunk.opinion[i] = match obs[1].cmp(&obs[0]) {
                std::cmp::Ordering::Greater => Opinion::One,
                std::cmp::Ordering::Less => Opinion::Zero,
                std::cmp::Ordering::Equal => {
                    let mut rng = streams.rng(id, StreamStage::Update);
                    Opinion::from_bool(rng.gen())
                }
            };
        }
    }

    fn opinion(&self, id: usize) -> Opinion {
        self.opinion[id]
    }

    fn count_opinion(&self, opinion: Opinion) -> usize {
        self.opinion.iter().filter(|&&o| o == opinion).count()
    }

    /// Memoryless dynamics: every agent is always in the single stage 0
    /// (explicit for the same reason as [`MajorityAgent`]'s impl).
    fn stage_id(&self, _id: usize) -> u32 {
        0
    }

    /// Fused sweep: memoryless dynamics put every agent in stage 0 with
    /// no weak opinion, so only the correct count needs a lane pass —
    /// value-identical to the default per-agent walk.
    fn metrics_sweep(&self, correct: Opinion) -> np_engine::metrics::MetricsSweep {
        let stages = if self.opinion.is_empty() {
            Vec::new()
        } else {
            vec![(0, self.opinion.len())]
        };
        np_engine::metrics::MetricsSweep {
            correct: self.opinion.iter().filter(|&&o| o == correct).count(),
            stages,
            ..Default::default()
        }
    }
}

impl np_engine::snapshot::SnapshotAgent for MajorityAgent {
    const SNAP_TAG: &'static str = "majority-agent/v1";

    fn encode_agent(&self, w: &mut np_engine::snapshot::SnapWriter) {
        w.put_role(self.role);
        w.put_opinion(self.opinion);
    }

    fn decode_agent(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        Ok(MajorityAgent {
            role: r.take_role()?,
            opinion: r.take_opinion()?,
        })
    }
}

impl np_engine::snapshot::SnapshotState for MajorityColumns {
    const SNAP_TAG: &'static str = "majority-columns/v1";

    fn encode_state(&self, w: &mut np_engine::snapshot::SnapWriter) {
        let n = self.role.len();
        w.put_usize(n);
        for &role in &self.role {
            w.put_role(role);
        }
        for &opinion in &self.opinion {
            w.put_opinion(opinion);
        }
    }

    fn decode_state(r: &mut np_engine::snapshot::SnapReader<'_>) -> np_engine::Result<Self> {
        let n = r.take_usize()?;
        let cap = n.min(r.remaining());
        let mut role = Vec::with_capacity(cap);
        for _ in 0..n {
            role.push(r.take_role()?);
        }
        let mut opinion = Vec::with_capacity(cap);
        for _ in 0..n {
            opinion.push(r.take_opinion()?);
        }
        Ok(MajorityColumns { role, opinion })
    }
}

/// Mean-field class-count state of the h-majority baseline
/// ([`np_engine::counts`] backend).
///
/// Majority's memory is one round deep, so the class structure is a
/// single count: non-source agents holding opinion 1. Sources are
/// stubborn at their preference; each round every non-source
/// independently adopts the majority of `h` fresh observations from the
/// collapsed law (fair coin on ties), so the new count is
/// `Binom(#non-sources, majority_prob(h, q₁))` — exact under the
/// aggregated with-replacement collapse.
#[derive(Debug, Clone)]
pub struct MajorityCountsState {
    n: u64,
    s0: u64,
    s1: u64,
    /// Non-source agents holding opinion 1.
    non_ones: u64,
}

impl MajorityCountsState {
    /// Agents (sources included) currently holding opinion 1.
    pub fn ones(&self) -> u64 {
        self.non_ones + self.s1
    }
}

impl np_engine::counts::CountsProtocol for HMajority {
    type State = MajorityCountsState;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_counts(&self, config: &PopulationConfig, rng: &mut StreamRng) -> MajorityCountsState {
        let n = config.n() as u64;
        let s0 = config.s0() as u64;
        let s1 = config.s1() as u64;
        // Sources start at their preference; non-sources flip a fair coin
        // (same law as `init_agent`).
        let non_ones = np_stats::binomial::sample_unchecked(rng, n - s0 - s1, 0.5);
        MajorityCountsState {
            n,
            s0,
            s1,
            non_ones,
        }
    }
}

impl np_engine::counts::CountsState for MajorityCountsState {
    fn display_histogram(&self, out: &mut [u64]) {
        out[1] = self.ones();
        out[0] = self.n - out[1];
    }

    fn advance_round(&mut self, obs_law: &[f64], h: u64, rng: &mut StreamRng) {
        let p_one = np_stats::binomial::majority_prob_unchecked(h, obs_law[1]);
        let non = self.n - self.s0 - self.s1;
        self.non_ones = np_stats::binomial::sample_unchecked(rng, non, p_one);
    }

    fn metrics_sweep(&self, correct: Opinion) -> np_engine::metrics::MetricsSweep {
        let n = self.n as usize;
        let ones = self.ones() as usize;
        np_engine::metrics::MetricsSweep {
            correct: match correct {
                Opinion::One => ones,
                Opinion::Zero => n - ones,
            },
            stages: vec![(0, n)],
            weak_formed: 0,
            weak_correct: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::channel::ChannelKind;
    use np_engine::counts::CountsWorld;
    use np_engine::population::PopulationConfig;
    use np_engine::world::World;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    #[test]
    fn counts_port_converges_with_source_majority() {
        // Mirrors the engine's toy example: 40 one-sources out of 64 under
        // 10% noise drive majority dynamics to consensus.
        let config = PopulationConfig::new(64, 0, 40, 64).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut w = CountsWorld::new(&HMajority, config, &noise, 42).unwrap();
        assert!(w.run_until_consensus(500).converged());
        assert_eq!(w.state().ones(), 64);
    }

    #[test]
    fn sources_are_stubborn() {
        let mut rng = StreamRng::seed_from_u64(0);
        let mut agent = HMajority.init_agent(Role::Source(Opinion::Zero), &mut rng);
        agent.update(&[0, 99], &mut rng);
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn non_source_takes_majority() {
        let mut rng = StreamRng::seed_from_u64(1);
        let mut agent = HMajority.init_agent(Role::NonSource, &mut rng);
        agent.update(&[2, 6], &mut rng);
        assert_eq!(agent.opinion(), Opinion::One);
        agent.update(&[6, 2], &mut rng);
        assert_eq!(agent.opinion(), Opinion::Zero);
    }

    #[test]
    fn ties_break_randomly() {
        let mut rng = StreamRng::seed_from_u64(2);
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            let mut agent = HMajority.init_agent(Role::NonSource, &mut rng);
            agent.update(&[4, 4], &mut rng);
            counts[agent.opinion().as_index()] += 1;
        }
        assert!(counts[0] > 100 && counts[1] > 100, "{counts:?}");
    }

    #[test]
    fn amplifies_existing_majority_fast() {
        // Majority of stubborn sources: convergence in a handful of
        // rounds even under noise.
        let config = PopulationConfig::new(128, 0, 80, 128).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut world = World::new(&HMajority, config, &noise, ChannelKind::Aggregated, 3).unwrap();
        let outcome = world.run_until_consensus(100);
        assert!(outcome.converged());
        assert!(outcome.rounds().unwrap() < 20);
    }

    #[test]
    fn columnar_matches_scalar_round_by_round() {
        let config = PopulationConfig::new(64, 2, 5, 64).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let mut scalar =
            World::new(&HMajority, config, &noise, ChannelKind::Aggregated, 17).unwrap();
        let mut columnar = World::new(
            &ColumnarHMajority,
            config,
            &noise,
            ChannelKind::Aggregated,
            17,
        )
        .unwrap();
        assert_eq!(scalar.opinions(), columnar.opinions(), "init");
        for round in 0..40 {
            scalar.step();
            columnar.step();
            assert_eq!(scalar.opinions(), columnar.opinions(), "round {round}");
        }
    }

    #[test]
    fn cannot_reliably_spread_from_single_source() {
        // The failure that motivates SF: one source among random initial
        // opinions. Majority dynamics lock into whichever side the initial
        // coin flips favor — the source's signal (1/n per observation) is
        // invisible — so success is a ~fair coin per run. Twelve
        // consecutive successes would be a 2^-12 event.
        let mut converged = 0;
        for seed in 0..12 {
            let config = PopulationConfig::new(256, 0, 1, 256).unwrap();
            let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
            let mut world =
                World::new(&HMajority, config, &noise, ChannelKind::Aggregated, seed).unwrap();
            if world.run_until_consensus(300).converged() {
                converged += 1;
            }
        }
        assert!(
            converged < 12,
            "single-source majority succeeded in all runs — it should behave like a coin flip"
        );
    }
}
