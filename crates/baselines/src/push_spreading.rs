//! Noisy PUSH(h) information spreading — the model contrast of §1.5.
//!
//! In the noisy PUSH model, *reception is reliable*: a message may arrive
//! corrupted, but it cannot arrive uninvited, and silence cannot be
//! faked. Feinerman, Haeupler and Korman (2017) \[18\] exploited this to
//! spread a bit in `O(log n)` rounds at `h = 1` — an exponential
//! separation from the `Ω(n)` PULL(1) lower bound. This module implements
//! a simplified protocol in that spirit (not the full \[18\] machinery) so
//! the separation can be *measured* (experiment EXP-PUSH):
//!
//! 1. **Spreading stage** — `S` phases of `R` rounds. Informed agents push
//!    their bit every round; an uninformed agent that received anything
//!    during a phase adopts the majority of what it received and becomes
//!    informed. Because *becoming informed* keys off the reliable
//!    reception event, awareness multiplies by ~`h·R` per phase and
//!    saturates in `O(log n / log(hR))` phases; content errors accumulate
//!    only along the (logarithmic) adoption depth.
//! 2. **Correction stage** — `B` sub-phases of `F` rounds in which *every*
//!    agent pushes its opinion and re-decodes the majority of what it
//!    receives: the same amplification engine as SF's Majority Boosting,
//!    transplanted to PUSH. It wipes out the per-hop noise accumulated
//!    during spreading.
//!
//! Total time: `S·R + B·F = O(polylog n)` for constant noise — versus
//! `Θ(n log n)` for PULL(1).

use np_engine::opinion::Opinion;
use np_engine::population::Role;
use np_engine::push::{PushAgentState, PushProtocol};
use np_engine::streams::StreamRng;
use rand::Rng;

/// Schedule for [`PushSpreading`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushSpreadingParams {
    /// Rounds per spreading phase (`R`).
    pub receipt_window: u64,
    /// Number of spreading phases (`S`).
    pub spreading_phases: u64,
    /// Rounds per correction sub-phase (`F`).
    pub correction_window: u64,
    /// Number of correction sub-phases (`B`).
    pub correction_subphases: u64,
}

impl PushSpreadingParams {
    /// Derives a schedule for `n` agents with per-sender fan-out `h` under
    /// uniform noise `δ < ½`.
    ///
    /// `R = ⌈2·ln n⌉`, `S = ⌈ln n / ln(1 + h·R)⌉ + 2`,
    /// `F = ⌈(100/(1−2δ)²)/h⌉`, `B = ⌈10·ln n⌉` — the correction stage
    /// mirrors SF's boosting constants.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 2`, `h ≥ 1` and `0 ≤ δ < ½`.
    pub fn derive(n: usize, h: usize, delta: f64) -> Self {
        assert!(n >= 2, "need at least two agents");
        assert!(h >= 1, "fan-out must be positive");
        assert!(
            (0.0..0.5).contains(&delta),
            "delta {delta} outside [0, 0.5)"
        );
        let ln_n = (n as f64).ln().max(1.0);
        let receipt_window = (2.0 * ln_n).ceil() as u64;
        let growth = (1.0 + h as f64 * receipt_window as f64).ln();
        let spreading_phases = (ln_n / growth).ceil() as u64 + 2;
        let gap = 1.0 - 2.0 * delta;
        let w = (100.0 / (gap * gap)).ceil();
        let correction_window = (w / h as f64).ceil() as u64;
        let correction_subphases = (10.0 * ln_n).ceil() as u64;
        PushSpreadingParams {
            receipt_window,
            spreading_phases,
            correction_window,
            correction_subphases,
        }
    }

    /// Total schedule length in rounds.
    pub fn total_rounds(&self) -> u64 {
        self.spreading_phases * self.receipt_window
            + self.correction_subphases * self.correction_window
    }

    /// End of the spreading stage, in rounds.
    pub fn spreading_rounds(&self) -> u64 {
        self.spreading_phases * self.receipt_window
    }
}

/// The simplified noisy PUSH spreading protocol (binary alphabet).
///
/// # Example
///
/// ```
/// use np_baselines::push_spreading::{PushSpreading, PushSpreadingParams};
/// use np_engine::{population::PopulationConfig, push::PushWorld};
/// use np_linalg::noise::NoiseMatrix;
///
/// let n = 256;
/// let params = PushSpreadingParams::derive(n, 1, 0.1);
/// let config = PopulationConfig::new(n, 0, 1, 1)?; // single source, h = 1!
/// let noise = NoiseMatrix::uniform(2, 0.1)?;
/// let mut world = PushWorld::new(&PushSpreading::new(params), config, &noise, 5)?;
/// world.run(params.total_rounds());
/// assert!(world.is_consensus());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushSpreading {
    params: PushSpreadingParams,
}

impl PushSpreading {
    /// Creates the protocol from a derived schedule.
    pub fn new(params: PushSpreadingParams) -> Self {
        PushSpreading { params }
    }

    /// The schedule in use.
    pub fn params(&self) -> &PushSpreadingParams {
        &self.params
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushStage {
    Spreading { phase: u64 },
    Correcting { subphase: u64 },
    Done,
}

/// Per-agent state of [`PushSpreading`].
#[derive(Debug, Clone)]
pub struct PushSpreadingAgent {
    params: PushSpreadingParams,
    stage: PushStage,
    round_in_stage: u64,
    informed: bool,
    opinion: Opinion,
    received: [u64; 2],
}

impl PushSpreadingAgent {
    /// Whether the agent has adopted a bit yet.
    pub fn is_informed(&self) -> bool {
        self.informed
    }

    fn majority(&self, rng: &mut StreamRng) -> Opinion {
        match self.received[1].cmp(&self.received[0]) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
        }
    }
}

impl PushProtocol for PushSpreading {
    type Agent = PushSpreadingAgent;

    fn alphabet_size(&self) -> usize {
        2
    }

    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> PushSpreadingAgent {
        PushSpreadingAgent {
            params: self.params,
            stage: PushStage::Spreading { phase: 0 },
            round_in_stage: 0,
            informed: role.is_source(),
            opinion: role.preference().unwrap_or(Opinion::from_bool(rng.gen())),
            received: [0, 0],
        }
    }
}

impl PushAgentState for PushSpreadingAgent {
    fn send(&self, _rng: &mut StreamRng) -> Option<usize> {
        match self.stage {
            // Spreading: only informed agents speak — silence is reliable.
            PushStage::Spreading { .. } => self.informed.then(|| self.opinion.as_index()),
            // Correction: everyone pushes (by now everyone is informed).
            PushStage::Correcting { .. } | PushStage::Done => Some(self.opinion.as_index()),
        }
    }

    fn receive(&mut self, received: &[u64], rng: &mut StreamRng) {
        debug_assert_eq!(received.len(), 2);
        self.received[0] += received[0];
        self.received[1] += received[1];
        self.round_in_stage += 1;
        match self.stage {
            PushStage::Spreading { phase } => {
                if self.round_in_stage >= self.params.receipt_window {
                    if !self.informed && self.received[0] + self.received[1] > 0 {
                        // The reliable reception event: adopt and join.
                        self.opinion = self.majority(rng);
                        self.informed = true;
                    }
                    self.received = [0, 0];
                    self.round_in_stage = 0;
                    if phase + 1 >= self.params.spreading_phases {
                        self.stage = PushStage::Correcting { subphase: 0 };
                        self.informed = true;
                    } else {
                        self.stage = PushStage::Spreading { phase: phase + 1 };
                    }
                }
            }
            PushStage::Correcting { subphase } => {
                if self.round_in_stage >= self.params.correction_window {
                    if self.received[0] + self.received[1] > 0 {
                        self.opinion = self.majority(rng);
                    }
                    self.received = [0, 0];
                    self.round_in_stage = 0;
                    if subphase + 1 >= self.params.correction_subphases {
                        self.stage = PushStage::Done;
                    } else {
                        self.stage = PushStage::Correcting {
                            subphase: subphase + 1,
                        };
                    }
                }
            }
            PushStage::Done => {
                self.received = [0, 0];
            }
        }
    }

    fn opinion(&self) -> Opinion {
        self.opinion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::population::PopulationConfig;
    use np_engine::push::PushWorld;
    use np_linalg::noise::NoiseMatrix;
    use rand::SeedableRng;

    #[test]
    fn params_shape() {
        let p = PushSpreadingParams::derive(1024, 1, 0.1);
        assert!(p.receipt_window >= 14); // 2 ln 1024 ≈ 13.9
        assert!(p.spreading_phases >= 3);
        assert!(p.correction_subphases >= 69);
        assert_eq!(
            p.total_rounds(),
            p.spreading_rounds() + p.correction_subphases * p.correction_window
        );
        // Larger h shrinks the correction window.
        let p8 = PushSpreadingParams::derive(1024, 8, 0.1);
        assert!(p8.correction_window < p.correction_window);
    }

    #[test]
    #[should_panic(expected = "outside [0, 0.5)")]
    fn params_reject_bad_delta() {
        let _ = PushSpreadingParams::derive(64, 1, 0.5);
    }

    #[test]
    fn uninformed_agents_stay_silent_in_spreading() {
        let params = PushSpreadingParams::derive(64, 1, 0.1);
        let proto = PushSpreading::new(params);
        let mut rng = StreamRng::seed_from_u64(0);
        let non = proto.init_agent(Role::NonSource, &mut rng);
        assert!(!non.is_informed());
        assert_eq!(non.send(&mut rng), None);
        let src = proto.init_agent(Role::Source(Opinion::One), &mut rng);
        assert!(src.is_informed());
        assert_eq!(src.send(&mut rng), Some(1));
    }

    #[test]
    fn adoption_happens_at_phase_boundary() {
        let params = PushSpreadingParams::derive(64, 1, 0.1);
        let proto = PushSpreading::new(params);
        let mut rng = StreamRng::seed_from_u64(1);
        let mut agent = proto.init_agent(Role::NonSource, &mut rng);
        // Receive a single One mid-phase: not yet informed.
        agent.receive(&[0, 1], &mut rng);
        assert!(!agent.is_informed());
        // Complete the phase silently: becomes informed with opinion One.
        for _ in 1..params.receipt_window {
            agent.receive(&[0, 0], &mut rng);
        }
        assert!(agent.is_informed());
        assert_eq!(agent.opinion(), Opinion::One);
        assert_eq!(agent.send(&mut rng), Some(1));
    }

    #[test]
    fn spreads_at_h_1_under_noise_in_polylog_time() {
        let n = 256;
        let params = PushSpreadingParams::derive(n, 1, 0.1);
        let config = PopulationConfig::new(n, 0, 1, 1).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut world = PushWorld::new(&PushSpreading::new(params), config, &noise, 7).unwrap();
        world.run(params.total_rounds());
        assert!(world.is_consensus(), "{}/{n}", world.correct_count());
        // The separation lives in the dissemination part: PUSH's spreading
        // stage is O(log n) rounds, versus the Θ(n·δ·log n) listening
        // phases PULL(1) needs before *any* agent knows anything. (The
        // majority-amplification stage costs the same in both models and
        // dominates at small n.)
        assert!(
            params.spreading_rounds() < n as u64,
            "spreading stage {} rounds is not ≪ n = {n}",
            params.spreading_rounds()
        );
    }

    #[test]
    fn spreads_opinion_zero_too() {
        let n = 256;
        let params = PushSpreadingParams::derive(n, 2, 0.1);
        let config = PopulationConfig::new(n, 1, 0, 2).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut world = PushWorld::new(&PushSpreading::new(params), config, &noise, 9).unwrap();
        world.run(params.total_rounds());
        assert!(world.is_consensus());
        assert!(world.iter_agents().all(|a| a.opinion() == Opinion::Zero));
    }
}
