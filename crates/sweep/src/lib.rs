//! `np_sweep` — crash-safe parameter sweeps for the noisy PULL
//! reproduction.
//!
//! The theory-verification experiments the paper demands (running time vs
//! `s`, `δ`, `h` across the Theorem 4/5 regimes) are grids of dozens of
//! independent seeded runs — too much work to lose to a crash and too much
//! for one process when `n` is large. This crate turns such a grid into a
//! *resumable* sweep built on three pieces:
//!
//! * [`spec`] — a declarative sweep description (hand-rolled `key = value`
//!   grid parser, no serde) that expands to a deterministic job list. Each
//!   job's seed is a pure function of the master seed and the job id
//!   ([`np_stats::seeds::SeedSequence::child_of_label`]), so re-expanding
//!   the spec after a crash reproduces exactly the seeds the interrupted
//!   run used.
//! * [`manifest`] — the `np-manifest/v1` JSONL job journal: an append-only
//!   file where the *latest* record per job wins. It is the single source
//!   of truth for `--resume`; checkpoints without a manifest record do not
//!   exist as far as the scheduler is concerned.
//! * [`scheduler`] — fans jobs over [`np_engine::runner::scatter`]
//!   (world-level parallelism complementing the engine's round-level
//!   chunk parallelism), checkpoints each world every K rounds via
//!   `World::snapshot` (`np-snap/v1`), and on resume continues only
//!   incomplete jobs from their latest snapshot.
//!
//! Determinism contract: the aggregated `np-bench/v1` report of a sweep
//! that was interrupted and resumed (any number of times, at any thread
//! count) is byte-identical to the report of an uninterrupted run. This
//! follows from the engine's byte-identical-continuation contract plus
//! the rule that every nondeterministic quantity (wall clocks, thread
//! counts, manifest record order) is excluded from the aggregate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable errors (sweep workers would
// die mid-grid); tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;

pub mod manifest;
pub mod scheduler;
pub mod spec;

/// Error type for sweep parsing, scheduling and persistence: every
/// failure is reported as text, CLI-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError(pub String);

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SweepError {}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError(format!("i/o error: {e}"))
    }
}

/// Converts any displayable error into a [`SweepError`].
pub(crate) fn err<E: fmt::Display>(e: E) -> SweepError {
    SweepError(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays_and_converts() {
        assert_eq!(SweepError("boom".into()).to_string(), "boom");
        let io = std::io::Error::other("nope");
        assert!(SweepError::from(io).to_string().contains("nope"));
    }
}
