//! The `np-manifest/v1` job journal: an append-only JSONL file that is
//! the single source of truth for sweep progress.
//!
//! Every state change of a job appends one [`JobRecord`] line; readers
//! keep the **latest** record per job id. A `checkpointed` record names
//! the snapshot file (relative to the sweep output directory) the job can
//! be resumed from; a `done` record carries the final outcome that the
//! aggregated report is built from. Because records are only ever
//! appended (never rewritten), a crash can at worst lose the last line —
//! in which case the job resumes from its previous record, re-runs a
//! suffix it already ran, and (by the engine's byte-identical-continuation
//! contract) produces the same outcome.
//!
//! Encoding is hand-rolled in the `report.rs` style (fixed field order,
//! shortest-roundtrip float rendering) so that encode→decode→encode is
//! byte-identical — the property the proptest suite pins down. This file
//! is a *deterministic-bytes* path: wall clocks and hash-map iteration are
//! banned here (enforced by `cargo xtask check`).

use std::io::Write;
use std::path::Path;

use crate::SweepError;

/// Schema tag of the manifest line format.
pub const MANIFEST_SCHEMA: &str = "np-manifest/v1";

/// Lifecycle state of a sweep job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Declared but no work persisted yet.
    Pending,
    /// A snapshot exists; `checkpoint` names it.
    Checkpointed,
    /// Finished; `round`, `consensus` and `correct` are final.
    Done,
}

impl JobStatus {
    /// The manifest name of the status.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Checkpointed => "checkpointed",
            JobStatus::Done => "done",
        }
    }

    /// Parses a manifest status name.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] for unknown names.
    pub fn parse(name: &str) -> Result<Self, SweepError> {
        match name {
            "pending" => Ok(JobStatus::Pending),
            "checkpointed" => Ok(JobStatus::Checkpointed),
            "done" => Ok(JobStatus::Done),
            other => Err(SweepError(format!("unknown job status `{other}`"))),
        }
    }
}

/// One manifest line: the full parameter set and current state of a job.
///
/// Parameters are repeated on every record so the manifest alone (without
/// the spec file) is enough to resume or audit a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id (the manifest key; latest record per id wins).
    pub job: String,
    /// Protocol name (`sf` | `ssf` | `sf-alt`).
    pub protocol: String,
    /// Population size.
    pub n: usize,
    /// Sample size.
    pub h: usize,
    /// Sources preferring 0.
    pub s0: usize,
    /// Sources preferring 1.
    pub s1: usize,
    /// Uniform noise level.
    pub delta: f64,
    /// Analysis constant.
    pub c1: f64,
    /// Derived per-job seed.
    pub seed: u64,
    /// Round budget of the job.
    pub budget: u64,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Snapshot path relative to the sweep output directory (present
    /// exactly for `checkpointed` records).
    pub checkpoint: Option<String>,
    /// Rounds completed so far (final for `done`).
    pub round: u64,
    /// Whether the run has reached correct consensus.
    pub consensus: bool,
    /// Agents holding the correct opinion.
    pub correct: usize,
}

impl JobRecord {
    /// Renders the record as one JSON line (no trailing newline), fields
    /// in fixed schema order.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"schema\":{},\"job\":{},\"protocol\":{},\"n\":{},\"h\":{},\
             \"s0\":{},\"s1\":{},\"delta\":{},\"c1\":{},\"seed\":{},\"budget\":{},\
             \"status\":{},\"checkpoint\":{},\"round\":{},\"consensus\":{},\"correct\":{}}}",
            json_string(MANIFEST_SCHEMA),
            json_string(&self.job),
            json_string(&self.protocol),
            self.n,
            self.h,
            self.s0,
            self.s1,
            json_f64(self.delta),
            json_f64(self.c1),
            self.seed,
            self.budget,
            json_string(self.status.name()),
            self.checkpoint
                .as_deref()
                .map_or("null".to_string(), json_string),
            self.round,
            self.consensus,
            self.correct
        )
    }

    /// Parses one manifest line.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] for malformed JSON, a wrong schema tag, or
    /// missing/mistyped fields.
    pub fn parse(line: &str) -> Result<Self, SweepError> {
        let fields = parse_object(line)?;
        let get = |name: &str| -> Result<&Json, SweepError> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| SweepError(format!("manifest record is missing `{name}`")))
        };
        let string = |name: &str| -> Result<String, SweepError> {
            match get(name)? {
                Json::Str(s) => Ok(s.clone()),
                other => Err(SweepError(format!(
                    "`{name}`: expected a string, got {other:?}"
                ))),
            }
        };
        let number = |name: &str| -> Result<&str, SweepError> {
            match get(name)? {
                Json::Num(raw) => Ok(raw.as_str()),
                other => Err(SweepError(format!(
                    "`{name}`: expected a number, got {other:?}"
                ))),
            }
        };
        let int = |name: &str| -> Result<u64, SweepError> {
            number(name)?
                .parse()
                .map_err(|_| SweepError(format!("`{name}`: not an unsigned integer")))
        };
        let float = |name: &str| -> Result<f64, SweepError> {
            number(name)?
                .parse()
                .map_err(|_| SweepError(format!("`{name}`: not a number")))
        };
        let schema = string("schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(SweepError(format!(
                "unsupported manifest schema `{schema}` (expected `{MANIFEST_SCHEMA}`)"
            )));
        }
        let usz = |name: &str| -> Result<usize, SweepError> {
            usize::try_from(int(name)?)
                .map_err(|_| SweepError(format!("`{name}`: does not fit usize")))
        };
        Ok(JobRecord {
            job: string("job")?,
            protocol: string("protocol")?,
            n: usz("n")?,
            h: usz("h")?,
            s0: usz("s0")?,
            s1: usz("s1")?,
            delta: float("delta")?,
            c1: float("c1")?,
            seed: int("seed")?,
            budget: int("budget")?,
            status: JobStatus::parse(&string("status")?)?,
            checkpoint: match get("checkpoint")? {
                Json::Null => None,
                Json::Str(s) => Some(s.clone()),
                other => {
                    return Err(SweepError(format!(
                        "`checkpoint`: expected a string or null, got {other:?}"
                    )))
                }
            },
            round: int("round")?,
            consensus: match get("consensus")? {
                Json::Bool(b) => *b,
                other => {
                    return Err(SweepError(format!(
                        "`consensus`: expected a boolean, got {other:?}"
                    )))
                }
            },
            correct: usz("correct")?,
        })
    }
}

/// Appends one record (plus newline) to the manifest at `path`, creating
/// the file if needed. The caller serializes concurrent appends.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn append_record(path: &Path, record: &JobRecord) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(record.to_json_line().as_bytes())?;
    file.write_all(b"\n")
}

/// Reads every record of a manifest file, in file order.
///
/// # Errors
///
/// Returns [`SweepError`] for I/O failures or a malformed line (with its
/// line number).
pub fn load_manifest(path: &Path) -> Result<Vec<JobRecord>, SweepError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SweepError(format!("cannot read manifest {}: {e}", path.display())))?;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            JobRecord::parse(line)
                .map_err(|e| SweepError(format!("manifest line {}: {e}", lineno + 1)))?,
        );
    }
    Ok(records)
}

/// The latest record for `job`, if any — the record that wins under the
/// append-only journal semantics.
pub fn latest<'a>(records: &'a [JobRecord], job: &str) -> Option<&'a JobRecord> {
    records.iter().rev().find(|r| r.job == job)
}

/// Escapes a string as a JSON string literal (report.rs conventions).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (shortest-roundtrip `Display`, so
/// equal values render to equal bytes; non-finite becomes `null`).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A decoded JSON scalar. Numbers keep their raw text so `u64` values
/// beyond 2⁵³ (seeds!) survive decoding exactly.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(String),
    Bool(bool),
    Null,
}

/// Parses a flat JSON object of scalar fields into `(key, value)` pairs
/// in source order. (Deliberately minimal: exactly the grammar
/// [`JobRecord::to_json_line`] emits — no nesting, no arrays.)
fn parse_object(line: &str) -> Result<Vec<(String, Json)>, SweepError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        i: 0,
    };
    let fields = p.object()?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(SweepError("trailing bytes after JSON object".into()));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn bad(&self, why: &str) -> SweepError {
        SweepError(format!("malformed manifest JSON at byte {}: {why}", self.i))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.i)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), SweepError> {
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&byte) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.bad(&format!("expected `{}`", byte as char)))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Json)>, SweepError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(fields);
                }
                _ => return Err(self.bad("expected `,` or `}`")),
            }
        }
    }

    fn value(&mut self) -> Result<Json, SweepError> {
        self.skip_ws();
        match self.bytes.get(self.i) {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b.is_ascii_digit() || *b == b'-' => {
                let start = self.i;
                while self.bytes.get(self.i).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.i += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.i])
                    .map_err(|_| self.bad("non-UTF-8 number"))?;
                Ok(Json::Num(raw.to_string()))
            }
            _ => Err(self.bad("expected a value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, SweepError> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.bad(&format!("expected `{word}`")))
        }
    }

    fn string(&mut self) -> Result<String, SweepError> {
        self.eat(b'"')?;
        let mut out = String::new();
        // Collect raw spans between escapes so multi-byte UTF-8 passes
        // through untouched.
        let mut span = self.i;
        loop {
            match self.bytes.get(self.i) {
                None => return Err(self.bad("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.span_str(span, self.i)?);
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.span_str(span, self.i)?);
                    self.i += 1;
                    let c = match self.bytes.get(self.i) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.bad("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.bad("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.bad("bad \\u escape"))?;
                            self.i += 4;
                            char::from_u32(code).ok_or_else(|| self.bad("bad \\u code point"))?
                        }
                        _ => return Err(self.bad("unknown escape")),
                    };
                    out.push(c);
                    self.i += 1;
                    span = self.i;
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn span_str(&self, start: usize, end: usize) -> Result<&str, SweepError> {
        std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| SweepError("manifest line is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord {
            job: "sf-n64-d0.1-r0".into(),
            protocol: "sf".into(),
            n: 64,
            h: 64,
            s0: 0,
            s1: 1,
            delta: 0.1,
            c1: 1.0,
            seed: u64::MAX - 3,
            budget: 40,
            status: JobStatus::Checkpointed,
            checkpoint: Some("checkpoints/sf-n64-d0.1-r0.snap".into()),
            round: 16,
            consensus: false,
            correct: 41,
        }
    }

    #[test]
    fn encode_decode_encode_is_byte_identical() {
        let line = record().to_json_line();
        let decoded = JobRecord::parse(&line).unwrap();
        assert_eq!(decoded, record());
        assert_eq!(decoded.to_json_line(), line);
    }

    #[test]
    fn large_seeds_survive_exactly() {
        let line = record().to_json_line();
        assert!(line.contains(&format!("\"seed\":{}", u64::MAX - 3)));
        assert_eq!(JobRecord::parse(&line).unwrap().seed, u64::MAX - 3);
    }

    #[test]
    fn done_record_has_null_checkpoint() {
        let mut rec = record();
        rec.status = JobStatus::Done;
        rec.checkpoint = None;
        rec.consensus = true;
        let line = rec.to_json_line();
        assert!(line.contains("\"checkpoint\":null"));
        assert_eq!(JobRecord::parse(&line).unwrap(), rec);
    }

    #[test]
    fn escaped_strings_round_trip() {
        let mut rec = record();
        rec.job = "weird \"job\"\\ with\nnewline\tand \u{1} control".into();
        let line = rec.to_json_line();
        assert_eq!(JobRecord::parse(&line).unwrap(), rec);
        assert_eq!(JobRecord::parse(&line).unwrap().to_json_line(), line);
    }

    #[test]
    fn rejects_malformed_lines() {
        let check = |line: &str, needle: &str| {
            let e = JobRecord::parse(line).unwrap_err().to_string();
            assert!(e.contains(needle), "`{line}` → {e}");
        };
        check("", "expected `{`");
        check("{", "expected"); // truncated object
        check("{}", "missing `schema`");
        check(
            "{\"schema\":\"np-manifest/v9\"}",
            "unsupported manifest schema",
        );
        check(&format!("{} trailing", record().to_json_line()), "trailing");
        check("{\"schema\":5}", "expected a string");
        let line = record().to_json_line().replace("\"n\":64", "\"n\":-4");
        check(&line, "`n`");
        let line = record()
            .to_json_line()
            .replace("\"status\":\"checkpointed\"", "\"status\":\"zzz\"");
        check(&line, "unknown job status");
        let line = record()
            .to_json_line()
            .replace("\"consensus\":false", "\"consensus\":7");
        check(&line, "expected a boolean");
    }

    #[test]
    fn append_load_and_latest_wins() {
        let dir = std::env::temp_dir().join("np_sweep_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.jsonl");
        std::fs::remove_file(&path).ok();
        let first = record();
        let mut second = record();
        second.status = JobStatus::Done;
        second.checkpoint = None;
        second.round = 33;
        let mut other = record();
        other.job = "ssf-n64-d0.1-r0".into();
        append_record(&path, &first).unwrap();
        append_record(&path, &other).unwrap();
        append_record(&path, &second).unwrap();
        let records = load_manifest(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(latest(&records, &first.job), Some(&second));
        assert_eq!(latest(&records, &other.job), Some(&other));
        assert_eq!(latest(&records, "nope"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn status_names_round_trip() {
        for s in [JobStatus::Pending, JobStatus::Checkpointed, JobStatus::Done] {
            assert_eq!(JobStatus::parse(s.name()).unwrap(), s);
        }
        assert!(JobStatus::parse("zzz").is_err());
    }
}
