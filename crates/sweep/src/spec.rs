//! The declarative sweep specification and its `key = value` grid parser.
//!
//! A spec is a plain-text file of `key = value[, value…]` lines; `#`
//! starts a comment and blank lines are ignored. Four keys accept comma
//! grids (`protocol`, `n`, `delta`, `topology`); the sweep is their
//! cartesian product times `runs` repetitions. Example:
//!
//! ```text
//! # Theorem 4 regime, two population sizes
//! protocol = sf, ssf
//! n        = 256, 1024
//! delta    = 0.1
//! runs     = 3
//! seed     = 7
//! ```
//!
//! [`SweepSpec::jobs`] expands the grid in *spec order* (protocol, then
//! `n`, then `delta`, then `topology`, then run index) into [`JobSpec`]s
//! with stable ids `{protocol}-n{n}-d{delta}[-{topo}]-r{run}` (the topo
//! segment appears only for non-complete topologies, so complete-graph
//! ids — and their derived seeds — are unchanged from pre-topology
//! sweeps). Each job's seed is derived from the master seed and the id
//! alone, so the expansion is a pure function of the spec text — the
//! property `--resume` relies on.

use np_engine::topology::TopologySpec;
use np_stats::seeds::SeedSequence;

use crate::SweepError;

/// The protocols a sweep can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Algorithm SF (columnar port).
    Sf,
    /// Algorithm SSF (columnar port).
    Ssf,
    /// The alternating-display SF variant (columnar port).
    SfAlt,
}

impl ProtocolKind {
    /// The spec/manifest name of the protocol.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Sf => "sf",
            ProtocolKind::Ssf => "ssf",
            ProtocolKind::SfAlt => "sf-alt",
        }
    }

    /// Parses a spec/manifest protocol name.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] for unknown names.
    pub fn parse(name: &str) -> Result<Self, SweepError> {
        match name {
            "sf" => Ok(ProtocolKind::Sf),
            "ssf" => Ok(ProtocolKind::Ssf),
            "sf-alt" => Ok(ProtocolKind::SfAlt),
            other => Err(SweepError(format!(
                "unknown protocol `{other}`; known: sf, ssf, sf-alt"
            ))),
        }
    }

    /// The display alphabet size of the protocol's channel.
    pub fn alphabet_size(self) -> usize {
        match self {
            ProtocolKind::Sf | ProtocolKind::SfAlt => 2,
            ProtocolKind::Ssf => 4,
        }
    }

    /// The default analysis constant `c1` (matches the CLI defaults).
    pub fn default_c1(self) -> f64 {
        match self {
            ProtocolKind::Sf | ProtocolKind::SfAlt => 1.0,
            ProtocolKind::Ssf => 16.0,
        }
    }
}

/// The simulation engine a sweep's jobs run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The per-agent engine (default): full checkpoint/resume support.
    PerAgent,
    /// The mean-field counts engine: class-count dynamics, no snapshots
    /// (jobs are cheap enough to re-run atomically), `sf`/`ssf` only.
    MeanField,
}

impl BackendKind {
    /// The spec name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::PerAgent => "per-agent",
            BackendKind::MeanField => "mean-field",
        }
    }

    /// Parses a spec backend name.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] for unknown names.
    pub fn parse(name: &str) -> Result<Self, SweepError> {
        match name {
            "per-agent" => Ok(BackendKind::PerAgent),
            "mean-field" => Ok(BackendKind::MeanField),
            other => Err(SweepError(format!(
                "unknown backend `{other}`; known: per-agent, mean-field"
            ))),
        }
    }
}

/// A parsed sweep specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Protocol grid (required, non-empty).
    pub protocols: Vec<ProtocolKind>,
    /// Population-size grid (required, non-empty).
    pub ns: Vec<usize>,
    /// Noise-level grid (required, non-empty).
    pub deltas: Vec<f64>,
    /// Sample size; `None` or `0` means `h = n` per job.
    pub h: Option<usize>,
    /// Sources preferring 0 (default 0).
    pub s0: usize,
    /// Sources preferring 1 (default 1).
    pub s1: usize,
    /// Analysis constant; `None` means the per-protocol default.
    pub c1: Option<f64>,
    /// Seeded repetitions per grid point (default 1).
    pub runs: usize,
    /// Master seed (default 42).
    pub seed: u64,
    /// SSF round budget in update intervals (default 10).
    pub budget_intervals: u64,
    /// Simulation engine for every job (default per-agent).
    pub backend: BackendKind,
    /// Interaction-graph grid (default: the complete graph only).
    pub topologies: Vec<TopologySpec>,
}

/// One expanded job: a single seeded run at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stable id, `{protocol}-n{n}-d{delta}-r{run}` — the manifest key.
    pub id: String,
    /// Protocol to run.
    pub protocol: ProtocolKind,
    /// Population size.
    pub n: usize,
    /// Sample size (already resolved; never 0).
    pub h: usize,
    /// Sources preferring 0.
    pub s0: usize,
    /// Sources preferring 1.
    pub s1: usize,
    /// Uniform noise level.
    pub delta: f64,
    /// Analysis constant (already resolved).
    pub c1: f64,
    /// Derived per-job seed.
    pub seed: u64,
    /// Run index within the grid point.
    pub run: usize,
    /// SSF round budget in update intervals.
    pub budget_intervals: u64,
    /// Simulation engine for this job.
    pub backend: BackendKind,
    /// Interaction graph the job's world samples over.
    pub topology: TopologySpec,
}

impl SweepSpec {
    /// Parses a spec from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] for unknown or duplicate keys, malformed
    /// values, empty grids, or missing required keys (`protocol`, `n`,
    /// `delta`).
    pub fn parse(text: &str) -> Result<Self, SweepError> {
        let mut protocols: Option<Vec<ProtocolKind>> = None;
        let mut ns: Option<Vec<usize>> = None;
        let mut deltas: Option<Vec<f64>> = None;
        let mut h: Option<usize> = None;
        let mut s0: Option<usize> = None;
        let mut s1: Option<usize> = None;
        let mut c1: Option<f64> = None;
        let mut runs: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut budget_intervals: Option<u64> = None;
        let mut backend: Option<BackendKind> = None;
        let mut topologies: Option<Vec<TopologySpec>> = None;

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |why: String| SweepError(format!("spec line {}: {why}", lineno + 1));
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at("expected `key = value`".into()))?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(at(format!("key `{key}` has no value")));
            }
            match key {
                "protocol" => {
                    let grid: Result<Vec<ProtocolKind>, SweepError> = value
                        .split(',')
                        .map(|v| ProtocolKind::parse(v.trim()))
                        .collect();
                    set_once(
                        &mut protocols,
                        key,
                        grid.map_err(|e| at(e.to_string()))?,
                        &at,
                    )?;
                }
                "n" => set_once(&mut ns, key, parse_grid(value, key, &at)?, &at)?,
                "delta" => set_once(&mut deltas, key, parse_grid(value, key, &at)?, &at)?,
                "h" => set_once(&mut h, key, parse_scalar(value, key, &at)?, &at)?,
                "s0" => set_once(&mut s0, key, parse_scalar(value, key, &at)?, &at)?,
                "s1" => set_once(&mut s1, key, parse_scalar(value, key, &at)?, &at)?,
                "c1" => set_once(&mut c1, key, parse_scalar(value, key, &at)?, &at)?,
                "runs" => set_once(&mut runs, key, parse_scalar(value, key, &at)?, &at)?,
                "seed" => set_once(&mut seed, key, parse_scalar(value, key, &at)?, &at)?,
                "budget-intervals" => {
                    set_once(
                        &mut budget_intervals,
                        key,
                        parse_scalar(value, key, &at)?,
                        &at,
                    )?;
                }
                "backend" => {
                    set_once(
                        &mut backend,
                        key,
                        BackendKind::parse(value).map_err(|e| at(e.to_string()))?,
                        &at,
                    )?;
                }
                "topology" => {
                    let grid: Result<Vec<TopologySpec>, SweepError> = value
                        .split(',')
                        .map(|v| TopologySpec::parse(v.trim()).map_err(|e| at(e.to_string())))
                        .collect();
                    set_once(&mut topologies, key, grid?, &at)?;
                }
                other => {
                    return Err(at(format!(
                        "unknown key `{other}`; known: protocol, n, delta, h, s0, s1, c1, \
                         runs, seed, budget-intervals, backend, topology"
                    )))
                }
            }
        }

        let require = |name: &str| SweepError(format!("spec is missing required key `{name}`"));
        let spec = SweepSpec {
            protocols: protocols.ok_or_else(|| require("protocol"))?,
            ns: ns.ok_or_else(|| require("n"))?,
            deltas: deltas.ok_or_else(|| require("delta"))?,
            h,
            s0: s0.unwrap_or(0),
            s1: s1.unwrap_or(1),
            c1,
            runs: runs.unwrap_or(1),
            seed: seed.unwrap_or(42),
            budget_intervals: budget_intervals.unwrap_or(10),
            backend: backend.unwrap_or(BackendKind::PerAgent),
            topologies: topologies.unwrap_or_else(|| vec![TopologySpec::Complete]),
        };
        if spec.runs == 0 {
            return Err(SweepError("spec: `runs` must be at least 1".into()));
        }
        if spec.backend == BackendKind::MeanField && spec.protocols.contains(&ProtocolKind::SfAlt) {
            return Err(SweepError(
                "spec: backend mean-field does not support protocol sf-alt \
                 (no counts port of the alternating display)"
                    .into(),
            ));
        }
        if spec.backend == BackendKind::MeanField {
            if let Some(t) = spec.topologies.iter().find(|t| !t.is_complete()) {
                return Err(SweepError(format!(
                    "spec: backend mean-field does not support topology {} \
                     (the counts engine assumes exchangeability over the complete graph)",
                    t.label()
                )));
            }
        }
        Ok(spec)
    }

    /// Reads and parses a spec file.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError`] for I/O failures or parse errors.
    pub fn load(path: &std::path::Path) -> Result<Self, SweepError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SweepError(format!("cannot read spec {}: {e}", path.display())))?;
        SweepSpec::parse(&text)
    }

    /// Expands the grid into the deterministic job list, in spec order
    /// (protocol → `n` → `delta` → topology → run index).
    ///
    /// Complete-graph jobs keep the pre-topology id shape
    /// `{protocol}-n{n}-d{delta}-r{run}` — and therefore the exact seeds
    /// of older sweeps; non-complete topologies splice a `-{topo}` segment
    /// before the run index.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let master = SeedSequence::new(self.seed);
        let mut jobs = Vec::new();
        for &protocol in &self.protocols {
            for &n in &self.ns {
                for &delta in &self.deltas {
                    for &topology in &self.topologies {
                        for run in 0..self.runs {
                            let id = if topology.is_complete() {
                                format!("{}-n{n}-d{delta}-r{run}", protocol.name())
                            } else {
                                format!(
                                    "{}-n{n}-d{delta}-{}-r{run}",
                                    protocol.name(),
                                    topology.label().replace(':', "")
                                )
                            };
                            let seed = master.child_of_label(&id).seed_at(0);
                            jobs.push(JobSpec {
                                id,
                                protocol,
                                n,
                                h: match self.h {
                                    None | Some(0) => n,
                                    Some(h) => h,
                                },
                                s0: self.s0,
                                s1: self.s1,
                                delta,
                                c1: self.c1.unwrap_or_else(|| protocol.default_c1()),
                                seed,
                                run,
                                budget_intervals: self.budget_intervals,
                                backend: self.backend,
                                topology,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

fn set_once<T>(
    slot: &mut Option<T>,
    key: &str,
    value: T,
    at: &dyn Fn(String) -> SweepError,
) -> Result<(), SweepError> {
    if slot.is_some() {
        return Err(at(format!("duplicate key `{key}`")));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_scalar<T: std::str::FromStr>(
    value: &str,
    key: &str,
    at: &dyn Fn(String) -> SweepError,
) -> Result<T, SweepError> {
    value
        .parse()
        .map_err(|_| at(format!("key `{key}`: cannot parse `{value}`")))
}

fn parse_grid<T: std::str::FromStr>(
    value: &str,
    key: &str,
    at: &dyn Fn(String) -> SweepError,
) -> Result<Vec<T>, SweepError> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            v.parse()
                .map_err(|_| at(format!("key `{key}`: cannot parse `{v}`")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
        # comment\n\
        protocol = sf, ssf\n\
        n = 64, 128   # trailing comment\n\
        delta = 0.1\n\
        runs = 2\n\
        seed = 7\n";

    #[test]
    fn parses_grids_and_defaults() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        assert_eq!(spec.protocols, vec![ProtocolKind::Sf, ProtocolKind::Ssf]);
        assert_eq!(spec.ns, vec![64, 128]);
        assert_eq!(spec.deltas, vec![0.1]);
        assert_eq!(spec.h, None);
        assert_eq!((spec.s0, spec.s1), (0, 1));
        assert_eq!(spec.c1, None);
        assert_eq!(spec.runs, 2);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.budget_intervals, 10);
        assert_eq!(spec.backend, BackendKind::PerAgent);
    }

    #[test]
    fn parses_mean_field_backend() {
        let spec = SweepSpec::parse("protocol=sf\nn=32\ndelta=0.1\nbackend=mean-field\n").unwrap();
        assert_eq!(spec.backend, BackendKind::MeanField);
        assert_eq!(spec.jobs()[0].backend, BackendKind::MeanField);
        for kind in [BackendKind::PerAgent, BackendKind::MeanField] {
            assert_eq!(BackendKind::parse(kind.name()).unwrap(), kind);
        }
    }

    #[test]
    fn expansion_order_ids_and_seeds() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 8); // 2 protocols x 2 n x 1 delta x 2 runs
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "sf-n64-d0.1-r0",
                "sf-n64-d0.1-r1",
                "sf-n128-d0.1-r0",
                "sf-n128-d0.1-r1",
                "ssf-n64-d0.1-r0",
                "ssf-n64-d0.1-r1",
                "ssf-n128-d0.1-r0",
                "ssf-n128-d0.1-r1",
            ]
        );
        // Seeds are distinct per job and stable across re-expansions.
        let seeds: std::collections::BTreeSet<u64> = jobs.iter().map(|j| j.seed).collect();
        assert_eq!(seeds.len(), jobs.len());
        assert_eq!(spec.jobs(), jobs);
        // h defaults to n per job; c1 to the protocol default.
        assert_eq!(jobs[0].h, 64);
        assert_eq!(jobs[2].h, 128);
        assert_eq!(jobs[0].c1, 1.0);
        assert_eq!(jobs[4].c1, 16.0);
    }

    #[test]
    fn explicit_h_zero_means_n() {
        let spec = SweepSpec::parse("protocol=sf\nn=32\ndelta=0.1\nh=0\n").unwrap();
        assert_eq!(spec.jobs()[0].h, 32);
        let spec = SweepSpec::parse("protocol=sf\nn=32\ndelta=0.1\nh=4\n").unwrap();
        assert_eq!(spec.jobs()[0].h, 4);
    }

    #[test]
    fn rejects_malformed_specs() {
        let check = |text: &str, needle: &str| {
            let e = SweepSpec::parse(text).unwrap_err().to_string();
            assert!(e.contains(needle), "`{text}` → {e}");
        };
        check("protocol sf\n", "key = value");
        check("protocol = gremlin\n", "unknown protocol");
        check("protocol = sf\nn = x\ndelta = 0.1\n", "cannot parse `x`");
        check("protocol = sf\nn = 64\n", "missing required key `delta`");
        check("n = 64\ndelta = 0.1\n", "missing required key `protocol`");
        check(
            "protocol = sf\nprotocol = ssf\nn=1\ndelta=0.1\n",
            "duplicate",
        );
        check("protocol = sf\nn=64\ndelta=0.1\nruns=0\n", "at least 1");
        check("protocol = sf\nn=64\ndelta=0.1\nbogus=1\n", "unknown key");
        check("protocol =\nn=64\ndelta=0.1\n", "no value");
        check(
            "protocol = sf\nn=64\ndelta=0.1\nbackend=gremlin\n",
            "unknown backend",
        );
        check(
            "protocol = sf-alt\nn=64\ndelta=0.1\nbackend=mean-field\n",
            "does not support protocol sf-alt",
        );
    }

    #[test]
    fn topology_grid_expands_with_suffixed_ids() {
        let spec =
            SweepSpec::parse("protocol=sf\nn=32\ndelta=0.1\ntopology=complete, ring:4\nruns=1\n")
                .unwrap();
        assert_eq!(
            spec.topologies,
            vec![TopologySpec::Complete, TopologySpec::Ring { k: 4 }]
        );
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2);
        // Complete jobs keep the pre-topology id — and therefore the exact
        // seeds of pre-topology sweeps; ring jobs splice a segment.
        assert_eq!(jobs[0].id, "sf-n32-d0.1-r0");
        assert_eq!(jobs[1].id, "sf-n32-d0.1-ring4-r0");
        let bare = SweepSpec::parse("protocol=sf\nn=32\ndelta=0.1\nruns=1\n").unwrap();
        assert_eq!(bare.jobs()[0].seed, jobs[0].seed);
        assert_ne!(jobs[0].seed, jobs[1].seed);
        assert_eq!(jobs[1].topology, TopologySpec::Ring { k: 4 });
    }

    #[test]
    fn topology_defaults_to_complete() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        assert_eq!(spec.topologies, vec![TopologySpec::Complete]);
        assert!(spec.jobs().iter().all(|j| j.topology.is_complete()));
    }

    #[test]
    fn rejects_topology_misuse() {
        let check = |text: &str, needle: &str| {
            let e = SweepSpec::parse(text).unwrap_err().to_string();
            assert!(e.contains(needle), "`{text}` → {e}");
        };
        check(
            "protocol=sf\nn=32\ndelta=0.1\ntopology=torus:3\n",
            "unknown topology `torus:3`",
        );
        check(
            "protocol=sf\nn=32\ndelta=0.1\ntopology=ring:2\nbackend=mean-field\n",
            "does not support topology ring:2",
        );
    }

    #[test]
    fn protocol_kind_round_trips() {
        for kind in [ProtocolKind::Sf, ProtocolKind::Ssf, ProtocolKind::SfAlt] {
            assert_eq!(ProtocolKind::parse(kind.name()).unwrap(), kind);
        }
        assert_eq!(ProtocolKind::Sf.alphabet_size(), 2);
        assert_eq!(ProtocolKind::Ssf.alphabet_size(), 4);
        assert_eq!(ProtocolKind::SfAlt.alphabet_size(), 2);
    }
}
