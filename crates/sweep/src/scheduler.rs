//! The sweep scheduler: fans jobs over [`np_engine::runner::scatter`],
//! checkpoints worlds every K rounds, resumes from the manifest, and
//! aggregates finished jobs into an `np-bench/v1` report.
//!
//! Parallelism layout: the scheduler parallelizes *across* jobs (each
//! worker owns one world at a time) and pins every world to one engine
//! thread, complementing — not multiplying with — the engine's intra-round
//! chunk parallelism. Results never depend on the worker count: each job
//! is a pure function of its [`JobSpec`], and the aggregate visits jobs in
//! spec order regardless of completion order.
//!
//! Checkpoint discipline: the loop steps, checks consensus (and breaks),
//! and only then considers checkpointing — so a snapshot is never taken
//! of a consensus state or of a finished budget, and every checkpoint is
//! guaranteed to have live work after it. Snapshot files are written to
//! `checkpoints/<job>.snap` via a temp-file rename, and the manifest
//! record naming a checkpoint is appended only after the rename — a crash
//! between the two leaves the previous record (and its older snapshot)
//! authoritative.
//!
//! The aggregated `report.json` contains trajectory data only
//! (`mean_wall_ms` is pinned to 0), so an interrupted-and-resumed sweep
//! reproduces the uninterrupted report byte for byte. Wall clocks appear
//! only in [`measure_throughput`], whose output is never byte-compared.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use noisy_pull::columnar::sf::ColumnarSourceFilter;
use noisy_pull::columnar::sf_alt::ColumnarAltSf;
use noisy_pull::columnar::ssf::ColumnarSsf;
use noisy_pull::params::{SfParams, SsfParams};
use noisy_pull::sf::SourceFilter;
use noisy_pull::ssf::SelfStabilizingSourceFilter;
use np_bench::report::{bench_json, PerfPoint};
use np_engine::channel::ChannelKind;
use np_engine::counts::{CountsProtocol, CountsWorld};
use np_engine::population::PopulationConfig;
use np_engine::protocol::ColumnarProtocol;
use np_engine::runner::scatter;
use np_engine::snapshot::SnapshotState;
use np_engine::world::World;
use np_linalg::noise::NoiseMatrix;

use crate::manifest::{append_record, latest, load_manifest, JobRecord, JobStatus};
use crate::spec::{BackendKind, JobSpec, ProtocolKind, SweepSpec};
use crate::{err, SweepError};

/// Scheduling options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Output directory (manifest, checkpoints, report).
    pub out: PathBuf,
    /// Checkpoint cadence in rounds (must be ≥ 1).
    pub checkpoint_every: u64,
    /// Stop the whole sweep after this many checkpoint writes — the
    /// deterministic "kill" used by the CI resume gate. `None` runs to
    /// completion.
    pub stop_after: Option<u64>,
    /// Worker threads for job-level fan-out (clamped by `scatter`).
    pub threads: usize,
    /// Continue an interrupted sweep from its manifest instead of
    /// requiring a fresh output directory.
    pub resume: bool,
}

impl SweepOptions {
    /// Default options for an output directory: checkpoint every 16
    /// rounds, run to completion, one worker.
    pub fn new(out: PathBuf) -> Self {
        SweepOptions {
            out,
            checkpoint_every: 16,
            stop_after: None,
            threads: 1,
            resume: false,
        }
    }
}

/// What a [`run_sweep`] call accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Jobs that reached `done` during this call.
    pub completed: usize,
    /// Jobs skipped because the manifest already had them `done`.
    pub skipped: usize,
    /// `true` if `stop_after` tripped; the manifest is resumable and no
    /// report was written.
    pub stopped_early: bool,
    /// Path of the aggregated report (absent when stopped early).
    pub report: Option<PathBuf>,
}

/// Shared per-sweep state handed to scatter workers.
struct SweepCtx<'a> {
    out: &'a Path,
    manifest_path: PathBuf,
    /// Serializes manifest appends so lines never interleave.
    manifest_lock: Mutex<()>,
    checkpoint_every: u64,
    stop_after: Option<u64>,
    checkpoints_written: AtomicU64,
    stop: AtomicBool,
    errors: Mutex<Vec<String>>,
}

impl SweepCtx<'_> {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn append(&self, record: &JobRecord) -> Result<(), SweepError> {
        let _guard = self
            .manifest_lock
            .lock()
            .map_err(|_| SweepError("manifest lock poisoned".into()))?;
        append_record(&self.manifest_path, record).map_err(err)
    }

    /// Counts one checkpoint write; returns `true` if the sweep-wide
    /// `stop_after` budget is now exhausted (and flags the stop).
    fn note_checkpoint(&self) -> bool {
        let written = self.checkpoints_written.fetch_add(1, Ordering::SeqCst) + 1;
        let Some(limit) = self.stop_after else {
            return false;
        };
        if written >= limit {
            self.stop.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }
}

/// Runs (or resumes) a sweep. See the module docs for the discipline that
/// makes the resulting `report.json` independent of interruptions and
/// thread counts.
///
/// # Errors
///
/// Returns [`SweepError`] when the output directory already holds a
/// manifest and `resume` is off, for I/O failures, for invalid job
/// parameters, or when any job fails.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    if opts.checkpoint_every == 0 {
        return Err(SweepError(
            "checkpoint cadence must be at least 1 round".into(),
        ));
    }
    std::fs::create_dir_all(opts.out.join("checkpoints"))?;
    let manifest_path = opts.out.join("manifest.jsonl");
    let prior = if manifest_path.exists() {
        if !opts.resume {
            return Err(SweepError(format!(
                "{} already exists; pass --resume to continue it or choose a fresh --out",
                manifest_path.display()
            )));
        }
        load_manifest(&manifest_path)?
    } else {
        Vec::new()
    };

    let mut todo: Vec<(JobSpec, Option<JobRecord>)> = Vec::new();
    let mut skipped = 0usize;
    for job in spec.jobs() {
        match latest(&prior, &job.id) {
            Some(rec) if rec.status == JobStatus::Done => skipped += 1,
            other => todo.push((job, other.cloned())),
        }
    }

    let ctx = SweepCtx {
        out: &opts.out,
        manifest_path: manifest_path.clone(),
        manifest_lock: Mutex::new(()),
        checkpoint_every: opts.checkpoint_every,
        stop_after: opts.stop_after,
        checkpoints_written: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        errors: Mutex::new(Vec::new()),
    };
    let attempted = todo.len();
    scatter(opts.threads.max(1), todo, |(job, prior)| {
        if ctx.stopped() {
            return;
        }
        if let Err(e) = run_job(&job, prior.as_ref(), &ctx) {
            if let Ok(mut errors) = ctx.errors.lock() {
                errors.push(format!("{}: {e}", job.id));
            }
            ctx.stop.store(true, Ordering::SeqCst);
        }
    });
    let errors = ctx
        .errors
        .lock()
        .map_err(|_| SweepError("error list poisoned".into()))?;
    if !errors.is_empty() {
        return Err(SweepError(format!("sweep failed: {}", errors.join("; "))));
    }
    if ctx.stopped() {
        return Ok(SweepOutcome {
            // Some jobs may still have finished before the stop tripped;
            // the manifest, not this count, is authoritative.
            completed: 0,
            skipped,
            stopped_early: true,
            report: None,
        });
    }

    let records = load_manifest(&manifest_path)?;
    let points = aggregate(spec, &records)?;
    let report_path = opts.out.join("report.json");
    std::fs::write(&report_path, bench_json("sweep", &points))?;
    Ok(SweepOutcome {
        completed: attempted,
        skipped,
        stopped_early: false,
        report: Some(report_path),
    })
}

/// Builds the initial manifest record for a job (shared by every state
/// transition; callers override the lifecycle fields).
fn base_record(job: &JobSpec, budget: u64) -> JobRecord {
    JobRecord {
        job: job.id.clone(),
        protocol: job.protocol.name().to_string(),
        n: job.n,
        h: job.h,
        s0: job.s0,
        s1: job.s1,
        delta: job.delta,
        c1: job.c1,
        seed: job.seed,
        budget,
        status: JobStatus::Pending,
        checkpoint: None,
        round: 0,
        consensus: false,
        correct: 0,
    }
}

/// Runs one job to completion (or until the sweep-wide stop flag trips),
/// dispatching on the protocol.
fn run_job(job: &JobSpec, prior: Option<&JobRecord>, ctx: &SweepCtx<'_>) -> Result<(), SweepError> {
    let config = PopulationConfig::new(job.n, job.s0, job.s1, job.h).map_err(err)?;
    if job.backend == BackendKind::MeanField {
        return match job.protocol {
            ProtocolKind::Sf => {
                let params = SfParams::derive(&config, job.delta, job.c1).map_err(err)?;
                let budget = params.total_rounds();
                drive_counts(&SourceFilter::new(params), config, budget, job, ctx)
            }
            ProtocolKind::Ssf => {
                let params = SsfParams::derive(&config, job.delta, job.c1).map_err(err)?;
                let budget = job.budget_intervals * params.update_interval();
                drive_counts(
                    &SelfStabilizingSourceFilter::new(params),
                    config,
                    budget,
                    job,
                    ctx,
                )
            }
            // `SweepSpec::parse` rejects mean-field + sf-alt; guard anyway
            // so a hand-built spec fails loudly instead of silently
            // running the wrong engine.
            ProtocolKind::SfAlt => Err(SweepError(
                "backend mean-field does not support protocol sf-alt".into(),
            )),
        };
    }
    match job.protocol {
        ProtocolKind::Sf => {
            let params = SfParams::derive(&config, job.delta, job.c1).map_err(err)?;
            let budget = params.total_rounds();
            drive(
                &ColumnarSourceFilter::new(params),
                config,
                budget,
                job,
                prior,
                ctx,
            )
        }
        ProtocolKind::SfAlt => {
            let params = SfParams::derive(&config, job.delta, job.c1).map_err(err)?;
            let budget = params.total_rounds();
            drive(&ColumnarAltSf::new(params), config, budget, job, prior, ctx)
        }
        ProtocolKind::Ssf => {
            let params = SsfParams::derive(&config, job.delta, job.c1).map_err(err)?;
            let budget = job.budget_intervals * params.update_interval();
            drive(&ColumnarSsf::new(params), config, budget, job, prior, ctx)
        }
    }
}

/// The generic job loop: build or restore the world, step to consensus or
/// budget, checkpointing every K rounds.
fn drive<P>(
    protocol: &P,
    config: PopulationConfig,
    budget: u64,
    job: &JobSpec,
    prior: Option<&JobRecord>,
    ctx: &SweepCtx<'_>,
) -> Result<(), SweepError>
where
    P: ColumnarProtocol,
    P::State: SnapshotState,
{
    let mut world = match prior {
        Some(rec) if rec.status == JobStatus::Checkpointed => {
            let rel = rec.checkpoint.as_deref().ok_or_else(|| {
                SweepError("checkpointed manifest record has no checkpoint path".into())
            })?;
            let bytes = std::fs::read(ctx.out.join(rel))
                .map_err(|e| SweepError(format!("cannot read checkpoint {rel}: {e}")))?;
            World::restore(protocol, &bytes).map_err(err)?
        }
        _ => {
            let noise =
                NoiseMatrix::uniform(job.protocol.alphabet_size(), job.delta).map_err(err)?;
            let mut world = World::new(protocol, config, &noise, ChannelKind::Aggregated, job.seed)
                .map_err(err)?;
            // Restored worlds skip this: an np-snap/v2 checkpoint already
            // carries the topology it was taken under.
            if !job.topology.is_complete() {
                world.set_topology(job.topology).map_err(err)?;
            }
            world
        }
    };
    // One engine thread per world: the sweep already parallelizes across
    // jobs, and oversubscribing cores would only add scheduling noise.
    world.set_threads(1);

    while world.round() < budget {
        if ctx.stopped() {
            // Leave the job as the manifest last described it; resume
            // re-runs the suffix deterministically.
            return Ok(());
        }
        world.step();
        if world.is_consensus() {
            break;
        }
        if world.round().is_multiple_of(ctx.checkpoint_every) && world.round() < budget {
            let rel = write_checkpoint(ctx.out, &job.id, &world.snapshot())?;
            let mut rec = base_record(job, budget);
            rec.status = JobStatus::Checkpointed;
            rec.checkpoint = Some(rel);
            rec.round = world.round();
            rec.correct = world.correct_count();
            ctx.append(&rec)?;
            if ctx.note_checkpoint() {
                return Ok(());
            }
        }
    }

    let mut rec = base_record(job, budget);
    rec.status = JobStatus::Done;
    rec.round = world.round();
    rec.consensus = world.is_consensus();
    rec.correct = world.correct_count();
    ctx.append(&rec)
}

/// The mean-field job loop: counts jobs are `O(states)` per round, so
/// they run atomically — no snapshots, no checkpoint records. A stop
/// request between rounds abandons the job (no record appended) and
/// resume re-runs it from scratch, which costs less than one per-agent
/// checkpoint restore.
fn drive_counts<P: CountsProtocol>(
    protocol: &P,
    config: PopulationConfig,
    budget: u64,
    job: &JobSpec,
    ctx: &SweepCtx<'_>,
) -> Result<(), SweepError> {
    // `SweepSpec::parse` rejects mean-field + non-complete topologies;
    // guard hand-built specs the same way the sf-alt arm does.
    if !job.topology.is_complete() {
        return Err(SweepError(format!(
            "backend mean-field does not support topology {}",
            job.topology.label()
        )));
    }
    let noise = NoiseMatrix::uniform(job.protocol.alphabet_size(), job.delta).map_err(err)?;
    let mut world = CountsWorld::new(protocol, config, &noise, job.seed).map_err(err)?;
    while world.round() < budget {
        if ctx.stopped() {
            return Ok(());
        }
        world.step();
        if world.is_consensus() {
            break;
        }
    }
    let mut rec = base_record(job, budget);
    rec.status = JobStatus::Done;
    rec.round = world.round();
    rec.consensus = world.is_consensus();
    rec.correct = world.correct_count();
    ctx.append(&rec)
}

/// Writes a snapshot to `checkpoints/<job>.snap` atomically (temp file +
/// rename) and returns the out-relative path.
fn write_checkpoint(out: &Path, job_id: &str, bytes: &[u8]) -> Result<String, SweepError> {
    let rel = format!("checkpoints/{job_id}.snap");
    let tmp = out.join(format!("checkpoints/{job_id}.snap.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, out.join(&rel))?;
    Ok(rel)
}

/// Aggregates `done` records into one [`PerfPoint`] per grid point, in
/// spec order. Trajectory data only: `mean_wall_ms` is pinned to 0 so the
/// report is byte-identical however the sweep was scheduled.
///
/// # Errors
///
/// Returns [`SweepError`] if any expected job is missing or not `done`.
pub fn aggregate(spec: &SweepSpec, records: &[JobRecord]) -> Result<Vec<PerfPoint>, SweepError> {
    let jobs = spec.jobs();
    let mut points = Vec::new();
    for &protocol in &spec.protocols {
        for &n in &spec.ns {
            for &delta in &spec.deltas {
                for &topology in &spec.topologies {
                    let mut runs = 0usize;
                    let mut converged = 0usize;
                    let mut rounds_sum = 0.0f64;
                    for job in jobs.iter().filter(|j| {
                        j.protocol == protocol
                            && j.n == n
                            && j.delta == delta
                            && j.topology == topology
                    }) {
                        let rec = latest(records, &job.id).ok_or_else(|| {
                            SweepError(format!("job {} has no manifest record", job.id))
                        })?;
                        if rec.status != JobStatus::Done {
                            return Err(SweepError(format!(
                                "job {} is {}, not done; resume the sweep first",
                                job.id,
                                rec.status.name()
                            )));
                        }
                        runs += 1;
                        if rec.consensus {
                            converged += 1;
                            rounds_sum += rec.round as f64;
                        }
                    }
                    // Complete-graph points keep the pre-topology label so
                    // existing reports stay byte-identical.
                    let label = if topology.is_complete() {
                        format!("{} n={n} d={delta}", protocol.name())
                    } else {
                        format!("{} n={n} d={delta} t={}", protocol.name(), topology.label())
                    };
                    points.push(PerfPoint {
                        label,
                        n,
                        runs,
                        converged,
                        mean_rounds: (converged > 0).then(|| rounds_sum / converged as f64),
                        mean_wall_ms: 0.0,
                        median_wall_ms: None,
                        p95_wall_ms: None,
                        // Per-agent sweeps omit the tag so their reports
                        // stay byte-identical to pre-backend artifacts.
                        backend: (spec.backend == BackendKind::MeanField)
                            .then(|| BackendKind::MeanField.name().to_string()),
                        degree: None,
                        convergence_rate: None,
                        messages_total: None,
                    });
                }
            }
        }
    }
    Ok(points)
}

/// Parameters for the throughput micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSpec {
    /// Population size.
    pub n: usize,
    /// Rounds to execute per measurement.
    pub rounds: u64,
    /// Uniform noise level.
    pub delta: f64,
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Seeded runs per thread-count point (clamped to at least 1).
    pub seeds: usize,
}

/// Measures wall-clock SF throughput (rounds/sec) at `spec.n` for engine
/// thread counts 1 and 4: `spec.seeds` seeded runs per thread count,
/// aggregated into one [`PerfPoint`] carrying mean/median/p95 wall-ms.
/// Wall clocks live here — and only here — in this crate: throughput
/// points feed `BENCH_throughput.json`, which is never byte-compared.
///
/// # Errors
///
/// Returns [`SweepError`] for invalid parameters.
pub fn measure_throughput(spec: &ThroughputSpec) -> Result<Vec<PerfPoint>, SweepError> {
    let mut points = Vec::new();
    let seeds = spec.seeds.max(1);
    for threads in [1usize, 4] {
        let mut samples_ms = Vec::with_capacity(seeds);
        let mut converged = 0usize;
        for run in 0..seeds {
            let config = PopulationConfig::new(spec.n, 0, 1, spec.n).map_err(err)?;
            let params = SfParams::derive(&config, spec.delta, 1.0).map_err(err)?;
            let noise = NoiseMatrix::uniform(2, spec.delta).map_err(err)?;
            let mut world = World::new(
                &ColumnarSourceFilter::new(params),
                config,
                &noise,
                ChannelKind::Aggregated,
                spec.seed + run as u64,
            )
            .map_err(err)?;
            world.set_threads(threads);
            // xtask-allow: wall-clock (throughput is the one sanctioned timing site)
            let start = std::time::Instant::now();
            world.run(spec.rounds);
            samples_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            converged += usize::from(world.is_consensus());
        }
        let mean = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
        // The fallback is unreachable: seeds >= 1, so samples_ms is never
        // empty and wall_quantiles always returns the real order stats.
        let (median, p95) = np_bench::report::wall_quantiles(&samples_ms).unwrap_or((mean, mean));
        points.push(PerfPoint {
            label: format!("sf n={} threads={threads}", spec.n),
            n: spec.n,
            runs: seeds,
            converged,
            mean_rounds: Some(spec.rounds as f64),
            mean_wall_ms: mean,
            median_wall_ms: Some(median),
            p95_wall_ms: Some(p95),
            backend: None,
            degree: None,
            convergence_rate: None,
            messages_total: None,
        });
    }
    Ok(points)
}

/// Rounds/sec encoded by a throughput [`PerfPoint`] (rounds over wall
/// time; 0 when the wall time is 0).
pub fn rounds_per_sec(point: &PerfPoint) -> f64 {
    let rounds = point.mean_rounds.unwrap_or(0.0);
    if point.mean_wall_ms > 0.0 {
        rounds / (point.mean_wall_ms / 1000.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_engine::topology::TopologySpec;

    fn spec(runs: usize) -> SweepSpec {
        SweepSpec {
            protocols: vec![ProtocolKind::Sf],
            ns: vec![32],
            deltas: vec![0.1],
            topologies: vec![TopologySpec::Complete],
            h: None,
            s0: 0,
            s1: 1,
            c1: None,
            runs,
            seed: 5,
            budget_intervals: 10,
            backend: BackendKind::PerAgent,
        }
    }

    fn temp_out(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("np_sweep_sched_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fresh_sweep_completes_and_reports() {
        let out = temp_out("fresh");
        let mut opts = SweepOptions::new(out.clone());
        opts.checkpoint_every = 8;
        let outcome = run_sweep(&spec(2), &opts).unwrap();
        assert_eq!(outcome.completed, 2);
        assert_eq!(outcome.skipped, 0);
        assert!(!outcome.stopped_early);
        let report = std::fs::read_to_string(outcome.report.unwrap()).unwrap();
        assert!(report.contains("\"schema\": \"np-bench/v1\""));
        assert!(report.contains("\"mean_wall_ms\": 0"));
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn mean_field_sweep_completes_and_tags_the_report() {
        let out = temp_out("mean_field");
        let opts = SweepOptions::new(out.clone());
        let mut s = spec(2);
        s.protocols = vec![ProtocolKind::Sf, ProtocolKind::Ssf];
        s.backend = BackendKind::MeanField;
        let outcome = run_sweep(&s, &opts).unwrap();
        assert_eq!(outcome.completed, 4);
        assert!(!outcome.stopped_early);
        let report = std::fs::read_to_string(outcome.report.unwrap()).unwrap();
        assert!(report.contains("\"schema\": \"np-bench/v1\""));
        assert!(report.contains("\"backend\": \"mean-field\""));
        // Counts jobs run atomically: the manifest holds only `done`
        // records and no snapshots were written.
        let records = load_manifest(&out.join("manifest.jsonl")).unwrap();
        assert!(records.iter().all(|r| r.status == JobStatus::Done));
        assert!(records.iter().all(|r| r.checkpoint.is_none()));
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn second_run_without_resume_is_refused() {
        let out = temp_out("refuse");
        let opts = SweepOptions::new(out.clone());
        run_sweep(&spec(1), &opts).unwrap();
        let e = run_sweep(&spec(1), &opts).unwrap_err().to_string();
        assert!(e.contains("--resume"), "{e}");
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn resume_skips_done_jobs() {
        let out = temp_out("skip");
        let mut opts = SweepOptions::new(out.clone());
        run_sweep(&spec(2), &opts).unwrap();
        opts.resume = true;
        let outcome = run_sweep(&spec(2), &opts).unwrap();
        assert_eq!(outcome.skipped, 2);
        assert_eq!(outcome.completed, 0);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn stop_after_then_resume_reproduces_the_uninterrupted_report() {
        let straight_out = temp_out("straight");
        let mut straight_opts = SweepOptions::new(straight_out.clone());
        straight_opts.checkpoint_every = 4;
        let straight = run_sweep(&spec(3), &straight_opts).unwrap();
        let want = std::fs::read(straight.report.unwrap()).unwrap();

        let out = temp_out("interrupted");
        let mut opts = SweepOptions::new(out.clone());
        opts.checkpoint_every = 4;
        opts.stop_after = Some(1);
        opts.threads = 4;
        let stopped = run_sweep(&spec(3), &opts).unwrap();
        assert!(stopped.stopped_early);
        assert!(stopped.report.is_none());
        assert!(out.join("manifest.jsonl").exists());

        opts.stop_after = None;
        opts.resume = true;
        let resumed = run_sweep(&spec(3), &opts).unwrap();
        assert!(!resumed.stopped_early);
        let got = std::fs::read(resumed.report.unwrap()).unwrap();
        assert_eq!(got, want, "resumed report differs from uninterrupted run");

        std::fs::remove_dir_all(&straight_out).ok();
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn ring_sweep_completes_and_labels_its_points() {
        let out = temp_out("ring");
        let opts = SweepOptions::new(out.clone());
        let mut s = spec(2);
        s.topologies = vec![TopologySpec::Complete, TopologySpec::Ring { k: 2 }];
        let outcome = run_sweep(&s, &opts).unwrap();
        assert_eq!(outcome.completed, 4);
        let report = std::fs::read_to_string(outcome.report.unwrap()).unwrap();
        // Complete points keep the pre-topology label; ring points append it.
        assert!(report.contains("\"sf n=32 d=0.1\""), "{report}");
        assert!(report.contains("\"sf n=32 d=0.1 t=ring:2\""), "{report}");
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn interrupted_ring_sweep_resumes_from_v2_checkpoints() {
        // Ring jobs checkpoint as np-snap/v2 (the snapshot carries the
        // topology); resuming from one must reproduce the uninterrupted
        // report byte-for-byte.
        let mut s = spec(3);
        s.topologies = vec![TopologySpec::Ring { k: 4 }];

        let straight_out = temp_out("ring_straight");
        let mut straight_opts = SweepOptions::new(straight_out.clone());
        straight_opts.checkpoint_every = 4;
        let straight = run_sweep(&s, &straight_opts).unwrap();
        let want = std::fs::read(straight.report.unwrap()).unwrap();

        let out = temp_out("ring_interrupted");
        let mut opts = SweepOptions::new(out.clone());
        opts.checkpoint_every = 4;
        opts.stop_after = Some(1);
        opts.threads = 4;
        let stopped = run_sweep(&s, &opts).unwrap();
        assert!(stopped.stopped_early);

        opts.stop_after = None;
        opts.resume = true;
        let resumed = run_sweep(&s, &opts).unwrap();
        let got = std::fs::read(resumed.report.unwrap()).unwrap();
        assert_eq!(got, want, "resumed ring report differs from straight run");

        std::fs::remove_dir_all(&straight_out).ok();
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn mean_field_refuses_restricted_topologies() {
        let out = temp_out("mf_topo");
        let opts = SweepOptions::new(out.clone());
        let mut s = spec(1);
        s.backend = BackendKind::MeanField;
        s.topologies = vec![TopologySpec::Ring { k: 2 }];
        let e = run_sweep(&s, &opts).unwrap_err().to_string();
        assert!(e.contains("does not support topology ring:2"), "{e}");
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn aggregate_requires_done_jobs() {
        let s = spec(1);
        let e = aggregate(&s, &[]).unwrap_err().to_string();
        assert!(e.contains("no manifest record"), "{e}");
    }

    #[test]
    fn zero_cadence_is_rejected() {
        let out = temp_out("cadence");
        let mut opts = SweepOptions::new(out);
        opts.checkpoint_every = 0;
        assert!(run_sweep(&spec(1), &opts).is_err());
    }

    #[test]
    fn throughput_points_cover_both_thread_counts() {
        let points = measure_throughput(&ThroughputSpec {
            n: 64,
            rounds: 20,
            delta: 0.1,
            seed: 3,
            seeds: 5,
        })
        .unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[0].label.contains("threads=1"));
        assert!(points[1].label.contains("threads=4"));
        for p in &points {
            assert_eq!(p.mean_rounds, Some(20.0));
            assert!(rounds_per_sec(p) >= 0.0);
            assert_eq!(p.runs, 5);
            let median = p.median_wall_ms.expect("per-seed quantiles recorded");
            let p95 = p.p95_wall_ms.expect("per-seed quantiles recorded");
            assert!(median <= p95, "median {median} > p95 {p95}");
        }
    }
}
