//! Property tests: an `np-manifest/v1` record must decode back to itself
//! and re-encode to the exact bytes it came from. The manifest is an
//! append-only journal that resumed sweeps replay, so encoding has to be
//! a pure, byte-stable function of the record.

use np_sweep::manifest::{JobRecord, JobStatus};
use proptest::prelude::*;

/// Characters that exercise every escaping path in the encoder: quotes,
/// backslashes, named escapes, raw control characters, multi-byte and
/// astral-plane code points.
const PALETTE: &[char] = &[
    'a',
    'Z',
    '0',
    '-',
    ' ',
    '"',
    '\\',
    '\n',
    '\r',
    '\t',
    '\u{1}',
    '\u{1f}',
    'é',
    'δ',
    '→',
    '\u{1d6c5}',
];

fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..16)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

proptest! {
    #[test]
    fn record_encode_decode_encode_is_byte_identical(
        job in text(),
        protocol in text(),
        n in 1usize..1_000_000,
        h in 0usize..1_000_000,
        s0 in 0usize..1_000,
        s1 in 0usize..1_000,
        delta in 0.0f64..0.5,
        c1 in 0.0f64..64.0,
        seed in any::<u64>(),
        budget in any::<u64>(),
        status_ix in 0usize..3,
        with_checkpoint in any::<bool>(),
        checkpoint in text(),
        round in any::<u64>(),
        consensus in any::<bool>(),
        correct in any::<usize>(),
    ) {
        let rec = JobRecord {
            job,
            protocol,
            n,
            h,
            s0,
            s1,
            delta,
            c1,
            seed,
            budget,
            status: [JobStatus::Pending, JobStatus::Checkpointed, JobStatus::Done][status_ix],
            checkpoint: with_checkpoint.then_some(checkpoint),
            round,
            consensus,
            correct,
        };
        let line = rec.to_json_line();
        let decoded = JobRecord::parse(&line).unwrap();
        prop_assert_eq!(&decoded, &rec);
        prop_assert_eq!(decoded.to_json_line(), line);
    }
}
