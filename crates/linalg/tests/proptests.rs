//! Property-based tests for the linear-algebra substrate.
//!
//! These check the paper's Section 4 statements on *randomized* inputs:
//! Corollary 14 (inverse-norm bound), Proposition 16 (`P = N⁻¹·T` is
//! stochastic and `N·P` is δ′-uniform), and Claims 11/12/15.

use np_linalg::lu::{determinant, invert};
use np_linalg::noise::{f_delta, inverse_norm_bound, NoiseMatrix};
use np_linalg::norm::operator_inf_norm;
use np_linalg::stochastic::{is_stochastic, is_weakly_stochastic};
use np_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a random δ-upper-bounded noise matrix of size `d` with level at
/// most `max_delta`.
///
/// Each row `σ` gets off-diagonal entries drawn in `[0, max_delta]` and the
/// diagonal absorbs the rest; by construction `N_{σσ} = 1 − Σ_{σ'≠σ} N_{σσ'}
/// ≥ 1 − (d−1)·max_delta` and every off-diagonal entry is `≤ max_delta`, so
/// the matrix is `max_delta`-upper bounded.
#[allow(clippy::needless_range_loop)] // (i, j) index the matrix symmetrically
fn upper_bounded_noise(d: usize, max_delta: f64) -> impl Strategy<Value = NoiseMatrix> {
    prop::collection::vec(0.0..=max_delta, d * (d - 1)).prop_map(move |offs| {
        let mut rows = vec![vec![0.0; d]; d];
        let mut it = offs.into_iter();
        for (i, row) in rows.iter_mut().enumerate() {
            let mut off_sum = 0.0;
            for j in 0..d {
                if i != j {
                    let x = it.next().expect("enough entries");
                    row[j] = x;
                    off_sum += x;
                }
            }
            row[i] = 1.0 - off_sum;
        }
        NoiseMatrix::from_rows(rows).expect("constructed stochastic")
    })
}

/// Strategy: a random stochastic matrix (rows normalized from positive
/// weights).
fn stochastic_matrix(d: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.01..1.0f64, d * d).prop_map(move |w| {
        let mut rows = vec![vec![0.0; d]; d];
        for i in 0..d {
            let slice = &w[i * d..(i + 1) * d];
            let sum: f64 = slice.iter().sum();
            for j in 0..d {
                rows[i][j] = slice[j] / sum;
            }
        }
        Matrix::from_rows(rows).expect("valid rows")
    })
}

proptest! {
    #[test]
    fn corollary_14_norm_bound_d2(n in upper_bounded_noise(2, 0.45)) {
        let delta = n.upper_bound_level().expect("constructed upper-bounded");
        prop_assume!(delta < 0.5 - 1e-6);
        let inv = n.inverse().expect("Corollary 14: invertible");
        let norm = operator_inf_norm(&inv);
        let bound = inverse_norm_bound(2, delta).unwrap();
        prop_assert!(norm <= bound + 1e-7, "norm {norm} > bound {bound}");
    }

    #[test]
    fn corollary_14_norm_bound_d4(n in upper_bounded_noise(4, 0.22)) {
        let delta = n.upper_bound_level().expect("constructed upper-bounded");
        prop_assume!(delta < 0.25 - 1e-6);
        let inv = n.inverse().expect("Corollary 14: invertible");
        let norm = operator_inf_norm(&inv);
        let bound = inverse_norm_bound(4, delta).unwrap();
        prop_assert!(norm <= bound + 1e-7, "norm {norm} > bound {bound}");
    }

    #[test]
    fn proposition_16_p_is_stochastic_and_composition_uniform_d2(
        n in upper_bounded_noise(2, 0.45)
    ) {
        prop_assume!(n.upper_bound_level().unwrap() < 0.5 - 1e-6);
        let red = n.artificial_noise().expect("Proposition 16 applies");
        prop_assert!(is_stochastic(red.artificial().as_matrix(), 1e-9));
        let composed = n.compose(red.artificial()).unwrap();
        prop_assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-7));
    }

    #[test]
    fn proposition_16_p_is_stochastic_and_composition_uniform_d3(
        n in upper_bounded_noise(3, 0.30)
    ) {
        prop_assume!(n.upper_bound_level().unwrap() < 1.0/3.0 - 1e-6);
        let red = n.artificial_noise().expect("Proposition 16 applies");
        prop_assert!(is_stochastic(red.artificial().as_matrix(), 1e-9));
        let composed = n.compose(red.artificial()).unwrap();
        prop_assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-7));
    }

    #[test]
    fn proposition_16_p_is_stochastic_and_composition_uniform_d4(
        n in upper_bounded_noise(4, 0.22)
    ) {
        prop_assume!(n.upper_bound_level().unwrap() < 0.25 - 1e-6);
        let red = n.artificial_noise().expect("Proposition 16 applies");
        prop_assert!(is_stochastic(red.artificial().as_matrix(), 1e-9));
        let composed = n.compose(red.artificial()).unwrap();
        prop_assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-7));
    }

    #[test]
    fn claim_15_f_increasing_and_bounded(d in 2usize..8, steps in 2usize..40) {
        let hi = 1.0 / d as f64;
        let mut prev = -1.0;
        for k in 0..steps {
            let delta = hi * (k as f64) / (steps as f64) * 0.999;
            let f = f_delta(d, delta).unwrap();
            prop_assert!(f > prev);
            prop_assert!((0.0..hi).contains(&f));
            prop_assert!(f >= delta - 1e-12);
            prev = f;
        }
    }

    #[test]
    fn claim_11_products_of_stochastic_are_stochastic(
        a in stochastic_matrix(3),
        b in stochastic_matrix(3)
    ) {
        let ab = a.mul_checked(&b).unwrap();
        prop_assert!(is_stochastic(&ab, 1e-9));
    }

    #[test]
    fn claim_12_inverse_of_stochastic_is_weakly_stochastic(a in stochastic_matrix(3)) {
        // Random stochastic matrices are a.s. invertible; skip singular draws.
        if let Ok(inv) = invert(&a) {
            prop_assert!(is_weakly_stochastic(&inv, 1e-6));
        }
    }

    #[test]
    fn inverse_roundtrip(a in stochastic_matrix(4)) {
        if let Ok(inv) = invert(&a) {
            let prod = a.mul_checked(&inv).unwrap();
            prop_assert!(prod.approx_eq(&Matrix::identity(4), 1e-7));
        }
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        a in stochastic_matrix(3),
        b in stochastic_matrix(3)
    ) {
        let da = determinant(&a).unwrap();
        let db = determinant(&b).unwrap();
        let dab = determinant(&a.mul_checked(&b).unwrap()).unwrap();
        prop_assert!((dab - da * db).abs() < 1e-9);
    }

    #[test]
    fn transpose_preserves_entries(a in stochastic_matrix(3)) {
        let t = a.transpose();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert_eq!(a[(i, j)], t[(j, i)]);
            }
        }
    }
}
