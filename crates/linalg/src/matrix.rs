use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is deliberately small and purpose-built: the noisy PULL model
/// only needs `d × d` matrices where `d = |Σ|` is the message-alphabet size
/// (2 for Algorithm SF, 4 for Algorithm SSF), so no effort is spent on
/// blocking or SIMD. All constructors validate their input shape.
///
/// # Example
///
/// ```
/// use np_linalg::Matrix;
///
/// let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let i = Matrix::identity(2);
/// assert_eq!(a.mul_checked(&i)?, a);
/// # Ok::<(), np_linalg::LinalgError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`; zero-dimensional matrices are
    /// never meaningful in this crate.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a vector of rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] if `rows` is empty, any row is
    /// empty, rows have inconsistent lengths, or any entry is non-finite.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::BadShape {
                detail: "no rows".into(),
            });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::BadShape {
                detail: "empty rows".into(),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::BadShape {
                    detail: format!("row {i} has length {} but row 0 has {cols}", row.len()),
                });
            }
            for (j, &x) in row.iter().enumerate() {
                if !x.is_finite() {
                    return Err(LinalgError::BadShape {
                        detail: format!("non-finite entry at ({i}, {j}): {x}"),
                    });
                }
                data.push(x);
            }
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::BadShape`] if `data.len() != rows * cols`, the
    /// dimensions are zero, or any entry is non-finite.
    pub fn from_flat(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::BadShape {
                detail: "zero dimension".into(),
            });
        }
        if data.len() != rows * cols {
            return Err(LinalgError::BadShape {
                detail: format!("expected {} entries, got {}", rows * cols, data.len()),
            });
        }
        if let Some(x) = data.iter().find(|x| !x.is_finite()) {
            return Err(LinalgError::BadShape {
                detail: format!("non-finite entry: {x}"),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of range {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterates over the rows of the matrix as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product, validating dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != other.rows()`.
    pub fn mul_checked(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                // xtask-allow: float-eq (exact-zero skip exploiting sparsity; a tolerance
                // here would change results)
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Returns the element-wise maximum absolute difference to `other`, or
    /// `None` if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Returns `true` if every entry differs from `other` by at most `tol`.
    ///
    /// Shapes must match exactly; mismatched shapes return `false`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.max_abs_diff(other).is_some_and(|d| d <= tol)
    }

    /// Scales every entry by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows() {
            write!(f, "  [")?;
            for (j, x) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x:.6}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "dimension mismatch in matrix addition"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "dimension mismatch in matrix subtraction"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on dimension mismatch; use [`Matrix::mul_checked`] for a
    /// fallible version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        // xtask-allow: unwrap (documented panic: `Mul` is the panicking variant of mul_checked)
        self.mul_checked(rhs).expect("dimension mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::BadShape { .. }));
    }

    #[test]
    fn from_rows_rejects_empty_and_nan() {
        assert!(Matrix::from_rows(vec![]).is_err());
        assert!(Matrix::from_rows(vec![vec![]]).is_err());
        assert!(Matrix::from_rows(vec![vec![f64::NAN]]).is_err());
        assert!(Matrix::from_rows(vec![vec![f64::INFINITY]]).is_err());
    }

    #[test]
    fn from_flat_validates_length() {
        assert!(Matrix::from_flat(2, 2, &[1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_flat(0, 2, &[]).is_err());
        let m = Matrix::from_flat(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn indexing_and_rows() {
        let m = sample();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn product_against_identity() {
        let m = sample();
        let i = Matrix::identity(2);
        assert_eq!(m.mul_checked(&i).unwrap(), m);
        assert_eq!(i.mul_checked(&m).unwrap(), m);
        assert_eq!(&m * &i, m);
    }

    #[test]
    fn product_known_value() {
        let a = sample();
        let b = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let ab = a.mul_checked(&b).unwrap();
        assert_eq!(
            ab,
            Matrix::from_rows(vec![vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
    }

    #[test]
    fn product_dimension_mismatch() {
        let a = sample();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.mul_checked(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_known_value() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample();
        let b = Matrix::identity(2);
        let c = &(&a + &b) - &b;
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = sample();
        let mut b = a.clone();
        b[(1, 1)] += 1e-7;
        assert!(a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&b, 1e-8));
        assert!(a.max_abs_diff(&Matrix::zeros(3, 3)).is_none());
        assert!(!a.approx_eq(&Matrix::zeros(3, 3), 100.0));
    }

    #[test]
    fn scale_scales_everything() {
        let m = sample().scale(2.0);
        assert_eq!(m.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn debug_output_is_nonempty() {
        assert!(format!("{:?}", sample()).contains("Matrix 2x2"));
    }
}
