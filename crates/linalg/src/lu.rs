//! LU decomposition with partial pivoting, linear solves, inversion, and
//! determinants.
//!
//! The paper's Theorem 8 needs the inverse of a δ-upper-bounded noise matrix
//! `N` (which Corollary 14 proves exists, with `‖N⁻¹‖∞ ≤ (d−1)/(1−dδ)`).
//! Since alphabet sizes are tiny (`d ∈ {2, 4}` for the paper's protocols),
//! Doolittle LU with partial pivoting is more than adequate numerically.

use crate::{LinalgError, Matrix, Result};

/// Relative pivot threshold below which a matrix is declared numerically
/// singular.
const PIVOT_EPS: f64 = 1e-12;

/// An LU decomposition `P·A = L·U` with partial pivoting.
///
/// Create one with [`LuDecomposition::new`], then reuse it for repeated
/// solves via [`LuDecomposition::solve`] — e.g. one solve per column when
/// computing an inverse.
///
/// # Example
///
/// ```
/// use np_linalg::{lu::LuDecomposition, Matrix};
///
/// let a = Matrix::from_rows(vec![vec![4.0, 3.0], vec![6.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// let b = a.mul_vec(&x)?;
/// assert!((b[0] - 10.0).abs() < 1e-9 && (b[1] - 12.0).abs() < 1e-9);
/// # Ok::<(), np_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined storage: strictly-lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row placed at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, `+1.0` or `-1.0` (for the determinant).
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::BadShape`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot smaller than the numerical
    ///   threshold is encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::BadShape {
                detail: format!("LU requires a square matrix, got {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        // Scale reference for the relative singularity test.
        let scale = lu
            .as_slice()
            .iter()
            .fold(0.0_f64, |m, &x| m.max(x.abs()))
            .max(1.0);

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    lu[(i, j)] -= factor * lu[(k, j)];
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    // Index-based loops mirror the textbook substitution formulas.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution on the permuted right-hand side (L has a unit
        // diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.lu[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Computes the inverse by solving against each canonical basis vector.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

/// Convenience wrapper: inverts a square matrix.
///
/// # Errors
///
/// * [`LinalgError::BadShape`] if `a` is not square.
/// * [`LinalgError::Singular`] if `a` is (numerically) singular.
///
/// # Example
///
/// ```
/// use np_linalg::{lu::invert, Matrix};
///
/// let a = Matrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 4.0]])?;
/// let inv = invert(&a)?;
/// assert!(inv.approx_eq(&Matrix::from_rows(vec![vec![0.5, 0.0], vec![0.0, 0.25]])?, 1e-12));
/// # Ok::<(), np_linalg::LinalgError>(())
/// ```
pub fn invert(a: &Matrix) -> Result<Matrix> {
    LuDecomposition::new(a)?.inverse()
}

/// Convenience wrapper: determinant of a square matrix.
///
/// Returns `0.0` for numerically singular matrices.
///
/// # Errors
///
/// Returns [`LinalgError::BadShape`] if `a` is not square.
pub fn determinant(a: &Matrix) -> Result<f64> {
    match LuDecomposition::new(a) {
        Ok(lu) => Ok(lu.determinant()),
        Err(LinalgError::Singular) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert_identity() {
        let i = Matrix::identity(4);
        assert!(invert(&i).unwrap().approx_eq(&i, 1e-12));
    }

    #[test]
    fn invert_known_2x2() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let inv = invert(&a).unwrap();
        let expected = Matrix::from_rows(vec![vec![-2.0, 1.0], vec![1.5, -0.5]]).unwrap();
        assert!(inv.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn invert_roundtrip_3x3() {
        let a = Matrix::from_rows(vec![
            vec![0.8, 0.1, 0.1],
            vec![0.05, 0.9, 0.05],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        let inv = invert(&a).unwrap();
        let prod = a.mul_checked(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
        let prod2 = inv.mul_checked(&a).unwrap();
        assert!(prod2.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(invert(&a), Err(LinalgError::Singular)));
        assert_eq!(determinant(&a).unwrap(), 0.0);
    }

    #[test]
    fn zero_pivot_requires_pivoting() {
        // First pivot is zero, but the matrix is invertible: pivoting must
        // kick in.
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let inv = invert(&a).unwrap();
        assert!(inv.approx_eq(&a, 1e-12));
        assert!((determinant(&a).unwrap() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 2.0]]).unwrap();
        assert!((determinant(&a).unwrap() - 6.0).abs() < 1e-12);
        let b = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!((determinant(&b).unwrap() - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_direct_computation() {
        let a = Matrix::from_rows(vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ])
        .unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[1.0, 2.0, 3.0]).unwrap();
        let b = a.mul_vec(&x).unwrap();
        for (got, want) in b.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_rejects_bad_rhs() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::BadShape { .. })
        ));
        assert!(determinant(&a).is_err());
    }

    #[test]
    fn dim_reports_size() {
        let lu = LuDecomposition::new(&Matrix::identity(5)).unwrap();
        assert_eq!(lu.dim(), 5);
    }
}
