//! Noise matrices and the artificial-noise reduction (Section 4 of the
//! paper).
//!
//! A *noise matrix* `N` over an alphabet `Σ` of size `d` is a stochastic
//! `d × d` matrix: when a displayed message `σ` is observed, the observer
//! receives `σ'` with probability `N_{σ,σ'}`. Definition 1 of the paper
//! distinguishes three classes, for `δ ∈ [0, 1/d]`:
//!
//! * **δ-lower bounded**: `N_{σ,σ'} ≥ δ` for every pair (the lower-bound
//!   theorem's assumption);
//! * **δ-upper bounded**: `N_{σ,σ} ≥ 1 − (d−1)δ` and `N_{σ,σ'} ≤ δ` for
//!   `σ ≠ σ'` (the upper-bound theorems' assumption);
//! * **δ-uniform**: equality in the above — every corruption is equally
//!   likely.
//!
//! Theorem 8 shows a δ-upper-bounded channel can be *exactly uniformized*:
//! there is a stochastic artificial-noise matrix `P = N⁻¹·T` such that
//! applying `P` to each received message makes the end-to-end channel
//! `N·P = T` exactly `f(δ)`-uniform, where `f` is the level map of
//! Definition 7. [`NoiseMatrix::artificial_noise`] is the constructive form
//! of that proof.

use crate::lu::LuDecomposition;
use crate::norm::operator_inf_norm;
use crate::stochastic::{is_stochastic, sanitize_stochastic, validate_stochastic, DEFAULT_TOL};
use crate::{LinalgError, Matrix, Result};

/// A validated stochastic noise matrix over an alphabet of size
/// [`NoiseMatrix::dim`].
///
/// The newtype guarantees squareness and stochasticity at construction, so
/// downstream code (channel samplers, the reduction) never has to re-check.
///
/// # Example
///
/// ```
/// use np_linalg::noise::NoiseMatrix;
///
/// // The binary symmetric channel with crossover probability 0.1.
/// let n = NoiseMatrix::uniform(2, 0.1)?;
/// assert_eq!(n.dim(), 2);
/// assert_eq!(n.uniform_level(), Some(0.1));
/// # Ok::<(), np_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseMatrix {
    m: Matrix,
}

impl NoiseMatrix {
    /// Wraps a square stochastic matrix as a noise matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::BadShape`] if `m` is not square.
    /// * [`LinalgError::NotStochastic`] if any row is not a probability
    ///   distribution (within [`DEFAULT_TOL`]).
    pub fn new(m: Matrix) -> Result<Self> {
        if !m.is_square() {
            return Err(LinalgError::BadShape {
                detail: format!("noise matrix must be square, got {}x{}", m.rows(), m.cols()),
            });
        }
        validate_stochastic(&m, DEFAULT_TOL)?;
        Ok(NoiseMatrix { m })
    }

    /// Builds a noise matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// Same as [`NoiseMatrix::new`], plus shape errors from
    /// [`Matrix::from_rows`].
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        NoiseMatrix::new(Matrix::from_rows(rows)?)
    }

    /// The noiseless channel: the `d × d` identity.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn noiseless(d: usize) -> Self {
        NoiseMatrix {
            m: Matrix::identity(d),
        }
    }

    /// The δ-uniform noise matrix on an alphabet of size `d`
    /// (Definition 1): diagonal `1 − (d−1)δ`, off-diagonal `δ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ParameterOutOfRange`] unless `0 ≤ δ ≤ 1/d`
    /// and `d ≥ 2`.
    pub fn uniform(d: usize, delta: f64) -> Result<Self> {
        if d < 2 {
            return Err(LinalgError::ParameterOutOfRange {
                name: "d",
                value: d as f64,
                range: "alphabet size must be at least 2".into(),
            });
        }
        if !(0.0..=1.0 / d as f64).contains(&delta) {
            return Err(LinalgError::ParameterOutOfRange {
                name: "delta",
                value: delta,
                range: format!("[0, 1/{d}]"),
            });
        }
        let mut m = Matrix::zeros(d, d);
        let diag = 1.0 - (d as f64 - 1.0) * delta;
        for i in 0..d {
            for j in 0..d {
                m[(i, j)] = if i == j { diag } else { delta };
            }
        }
        Ok(NoiseMatrix { m })
    }

    /// Alphabet size `d = |Σ|`.
    pub fn dim(&self) -> usize {
        self.m.rows()
    }

    /// Borrows the underlying matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.m
    }

    /// Consumes the newtype, returning the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.m
    }

    /// Row `σ` as a probability distribution over observed messages.
    ///
    /// # Panics
    ///
    /// Panics if `sigma >= self.dim()`.
    pub fn observation_distribution(&self, sigma: usize) -> &[f64] {
        self.m.row(sigma)
    }

    /// Returns `true` if the matrix is δ-lower bounded (Definition 1):
    /// every entry is at least `delta` (up to [`DEFAULT_TOL`]).
    pub fn is_lower_bounded(&self, delta: f64) -> bool {
        self.m.as_slice().iter().all(|&x| x >= delta - DEFAULT_TOL)
    }

    /// The largest `δ` for which this matrix is δ-lower bounded: its
    /// minimum entry.
    pub fn lower_bound_level(&self) -> f64 {
        self.m
            .as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// Returns `true` if the matrix is δ-upper bounded (Definition 1, Eq.
    /// (1)): `N_{σ,σ} ≥ 1 − (d−1)δ` and `N_{σ,σ'} ≤ δ` off-diagonal, up to
    /// [`DEFAULT_TOL`].
    pub fn is_upper_bounded(&self, delta: f64) -> bool {
        let d = self.dim() as f64;
        if !(0.0..=1.0 / d + DEFAULT_TOL).contains(&delta) {
            return false;
        }
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                let x = self.m[(i, j)];
                if i == j {
                    if x < 1.0 - (d - 1.0) * delta - DEFAULT_TOL {
                        return false;
                    }
                } else if x > delta + DEFAULT_TOL {
                    return false;
                }
            }
        }
        true
    }

    /// The smallest `δ` for which this matrix is δ-upper bounded, or `None`
    /// if no `δ ≤ 1/d` works (e.g. a channel that corrupts more often than
    /// uniform chance).
    ///
    /// For a δ-uniform matrix this returns exactly δ (up to float error).
    pub fn upper_bound_level(&self) -> Option<f64> {
        let d = self.dim() as f64;
        let mut delta: f64 = 0.0;
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                let x = self.m[(i, j)];
                if i == j {
                    // Need 1 − (d−1)δ ≤ x, i.e. δ ≥ (1 − x)/(d−1).
                    delta = delta.max((1.0 - x) / (d - 1.0));
                } else {
                    // Need x ≤ δ.
                    delta = delta.max(x);
                }
            }
        }
        (delta <= 1.0 / d + DEFAULT_TOL).then_some(delta.min(1.0 / d))
    }

    /// Returns `true` if the matrix is exactly δ-uniform for the given
    /// level, within `tol`.
    pub fn is_uniform_with_level(&self, delta: f64, tol: f64) -> bool {
        let d = self.dim() as f64;
        let diag = 1.0 - (d - 1.0) * delta;
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                let want = if i == j { diag } else { delta };
                if (self.m[(i, j)] - want).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// If the matrix is δ-uniform (within [`DEFAULT_TOL`]), returns its
    /// level δ; otherwise `None`.
    pub fn uniform_level(&self) -> Option<f64> {
        // All off-diagonal entries must agree; take the first as candidate.
        let delta = if self.dim() >= 2 { self.m[(0, 1)] } else { 0.0 };
        self.is_uniform_with_level(delta, DEFAULT_TOL)
            .then_some(delta)
    }

    /// Composes two channels: a message first passes through `self`, then
    /// through `after` — the combined channel is `self · after`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the alphabet sizes
    /// differ, or [`LinalgError::NotStochastic`] if numerical error pushes
    /// the product outside tolerance (practically impossible).
    pub fn compose(&self, after: &NoiseMatrix) -> Result<NoiseMatrix> {
        let prod = self.m.mul_checked(&after.m)?;
        NoiseMatrix::new(prod)
    }

    /// Inverts the noise matrix.
    ///
    /// Corollary 14 of the paper proves every δ-upper-bounded matrix with
    /// `δ < 1/d` is invertible with `‖N⁻¹‖∞ ≤ (d−1)/(1−dδ)`; this method
    /// works for any numerically invertible noise matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix is numerically
    /// singular (possible only when it is not δ-upper bounded for any
    /// `δ < 1/d`).
    pub fn inverse(&self) -> Result<Matrix> {
        LuDecomposition::new(&self.m)?.inverse()
    }

    /// Derives the artificial noise of Theorem 8 / Proposition 16.
    ///
    /// Computes the tightest upper-bound level `δ` of this matrix, the
    /// target uniform level `δ' = f(δ)` (Definition 7), and the stochastic
    /// matrix `P = N⁻¹·T` where `T` is δ'-uniform. Agents that re-randomize
    /// every received message according to `P` experience an end-to-end
    /// channel distributed exactly as `T`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NoiseClassViolation`] if the matrix is not δ-upper
    ///   bounded for any `δ < 1/d` (then the construction does not apply).
    /// * [`LinalgError::NotStochastic`] if `P` fails validation — by
    ///   Proposition 16 this indicates a numerical problem, not a modelling
    ///   one.
    ///
    /// # Example
    ///
    /// ```
    /// use np_linalg::noise::NoiseMatrix;
    ///
    /// let n = NoiseMatrix::from_rows(vec![vec![0.85, 0.15], vec![0.05, 0.95]])?;
    /// let red = n.artificial_noise()?;
    /// let composed = n.compose(red.artificial())?;
    /// assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-9));
    /// # Ok::<(), np_linalg::LinalgError>(())
    /// ```
    pub fn artificial_noise(&self) -> Result<ArtificialNoise> {
        let d = self.dim();
        let delta = self
            .upper_bound_level()
            .ok_or_else(|| LinalgError::NoiseClassViolation {
                detail: format!(
                    "matrix is not δ-upper bounded for any δ ≤ 1/{d}; reduction does not apply"
                ),
            })?;
        if delta >= 1.0 / d as f64 - 1e-12 && delta > 0.0 {
            // At δ = 1/d the channel can be non-invertible (fully mixing).
            if self.inverse().is_err() {
                return Err(LinalgError::NoiseClassViolation {
                    detail: format!("δ = {delta} reaches 1/d; channel carries no information"),
                });
            }
        }
        let delta_prime = f_delta(d, delta)?;
        let t = NoiseMatrix::uniform(d, delta_prime)?;
        let n_inv = self.inverse()?;
        let p_raw = n_inv.mul_checked(t.as_matrix())?;
        // Proposition 16 guarantees stochasticity; sanitize float fuzz so
        // alias samplers downstream get exact probabilities.
        let p = sanitize_stochastic(&p_raw, 1e-7)?;
        debug_assert!(is_stochastic(&p, DEFAULT_TOL));
        Ok(ArtificialNoise {
            p: NoiseMatrix { m: p },
            source_level: delta,
            uniform_level: delta_prime,
        })
    }
}

/// The result of the Theorem 8 reduction: an artificial-noise matrix plus
/// the levels involved.
///
/// Returned by [`NoiseMatrix::artificial_noise`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArtificialNoise {
    p: NoiseMatrix,
    source_level: f64,
    uniform_level: f64,
}

impl ArtificialNoise {
    /// The stochastic matrix `P` agents apply to every received message
    /// (Definition 6).
    pub fn artificial(&self) -> &NoiseMatrix {
        &self.p
    }

    /// Consumes the reduction, returning `P`.
    pub fn into_artificial(self) -> NoiseMatrix {
        self.p
    }

    /// The upper-bound level `δ` of the original channel.
    pub fn source_level(&self) -> f64 {
        self.source_level
    }

    /// The uniform level `δ' = f(δ)` of the composed channel.
    pub fn uniform_level(&self) -> f64 {
        self.uniform_level
    }
}

/// The noise-level map `f` of Definition 7:
///
/// `f(0) = 0`, and for `δ ∈ (0, 1/d)`:
///
/// `f(δ) = ( d + ½·(1/(d−1))²·(1−dδ)/δ )⁻¹`.
///
/// `f` is continuous and increasing on `[0, 1/d)` with `f(δ) < 1/d`
/// (Claim 15), and `f(δ) ≥ δ` on the domain — artificial uniformization
/// never *reduces* noise. The level is chosen exactly large enough that
/// `δ'/(1−dδ') = 2(d−1)²·δ/(1−dδ)` dominates the most negative possible
/// entry of `N⁻¹` (Claim 17), which is what makes `P = N⁻¹·T` stochastic
/// in Proposition 16.
///
/// # Errors
///
/// Returns [`LinalgError::ParameterOutOfRange`] unless `d ≥ 2` and
/// `0 ≤ δ < 1/d`.
///
/// # Example
///
/// ```
/// let f = np_linalg::noise::f_delta(2, 0.25)?;
/// assert!(f > 0.25 && f < 0.5);
/// assert_eq!(np_linalg::noise::f_delta(2, 0.0)?, 0.0);
/// # Ok::<(), np_linalg::LinalgError>(())
/// ```
pub fn f_delta(d: usize, delta: f64) -> Result<f64> {
    if d < 2 {
        return Err(LinalgError::ParameterOutOfRange {
            name: "d",
            value: d as f64,
            range: "alphabet size must be at least 2".into(),
        });
    }
    let dd = d as f64;
    if !(0.0..1.0 / dd).contains(&delta) {
        return Err(LinalgError::ParameterOutOfRange {
            name: "delta",
            value: delta,
            range: format!("[0, 1/{d})"),
        });
    }
    // xtask-allow: float-eq (IEEE sentinel: exact zero has a closed-form answer)
    if delta == 0.0 {
        return Ok(0.0);
    }
    let g = dd + 0.5 / ((dd - 1.0) * (dd - 1.0)) * (1.0 - dd * delta) / delta;
    Ok(1.0 / g)
}

/// Corollary 14's bound on the inverse: `(d−1)/(1−dδ)`.
///
/// Useful for verifying the numerical inverse: for any δ-upper-bounded `N`,
/// `‖N⁻¹‖∞` must not exceed this value.
///
/// # Errors
///
/// Returns [`LinalgError::ParameterOutOfRange`] unless `d ≥ 2` and
/// `0 ≤ δ < 1/d`.
pub fn inverse_norm_bound(d: usize, delta: f64) -> Result<f64> {
    if d < 2 {
        return Err(LinalgError::ParameterOutOfRange {
            name: "d",
            value: d as f64,
            range: "alphabet size must be at least 2".into(),
        });
    }
    let dd = d as f64;
    if !(0.0..1.0 / dd).contains(&delta) {
        return Err(LinalgError::ParameterOutOfRange {
            name: "delta",
            value: delta,
            range: format!("[0, 1/{d})"),
        });
    }
    Ok((dd - 1.0) / (1.0 - dd * delta))
}

/// Checks Corollary 14 numerically for a concrete matrix: returns
/// `(‖N⁻¹‖∞, bound)`.
///
/// # Errors
///
/// Propagates errors from [`NoiseMatrix::inverse`],
/// [`NoiseMatrix::upper_bound_level`] failure
/// ([`LinalgError::NoiseClassViolation`]) and [`inverse_norm_bound`].
pub fn verify_inverse_norm_bound(n: &NoiseMatrix) -> Result<(f64, f64)> {
    let delta = n
        .upper_bound_level()
        .ok_or_else(|| LinalgError::NoiseClassViolation {
            detail: "matrix is not δ-upper bounded".into(),
        })?;
    let inv = n.inverse()?;
    let norm = operator_inf_norm(&inv);
    let bound = inverse_norm_bound(n.dim(), delta)?;
    Ok((norm, bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_constructor_matches_definition() {
        let n = NoiseMatrix::uniform(4, 0.1).unwrap();
        assert!(n.is_uniform_with_level(0.1, 1e-12));
        assert_eq!(n.uniform_level(), Some(0.1));
        assert_eq!(
            n.upper_bound_level().map(|d| (d * 1e12).round() / 1e12),
            Some(0.1)
        );
        assert!(n.is_upper_bounded(0.1));
        assert!(n.is_lower_bounded(0.1));
        assert_eq!(n.lower_bound_level(), 0.1);
    }

    #[test]
    fn uniform_rejects_bad_parameters() {
        assert!(NoiseMatrix::uniform(1, 0.1).is_err());
        assert!(NoiseMatrix::uniform(2, -0.1).is_err());
        assert!(NoiseMatrix::uniform(2, 0.51).is_err());
        // δ = 1/d exactly is allowed by Definition 1 (fully mixing channel).
        assert!(NoiseMatrix::uniform(2, 0.5).is_ok());
    }

    #[test]
    fn noiseless_is_identity() {
        let n = NoiseMatrix::noiseless(3);
        assert_eq!(n.uniform_level(), Some(0.0));
        assert_eq!(n.upper_bound_level(), Some(0.0));
        assert_eq!(n.observation_distribution(1), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn new_rejects_non_square_and_non_stochastic() {
        assert!(NoiseMatrix::new(Matrix::zeros(2, 3)).is_err());
        assert!(NoiseMatrix::from_rows(vec![vec![0.9, 0.2], vec![0.5, 0.5]]).is_err());
        assert!(NoiseMatrix::from_rows(vec![vec![1.1, -0.1], vec![0.5, 0.5]]).is_err());
    }

    #[test]
    fn upper_bound_level_of_asymmetric_channel() {
        let n = NoiseMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        // Diagonal constraint: (1 − 0.8)/(2−1) = 0.2; off-diagonal max 0.2.
        assert!((n.upper_bound_level().unwrap() - 0.2).abs() < 1e-12);
        assert!(n.is_upper_bounded(0.2));
        assert!(!n.is_upper_bounded(0.15));
        assert!(n.uniform_level().is_none());
    }

    #[test]
    fn upper_bound_level_none_when_too_noisy() {
        // Off-diagonal 0.6 > 1/2: no δ ≤ 1/d works.
        let n = NoiseMatrix::from_rows(vec![vec![0.4, 0.6], vec![0.6, 0.4]]).unwrap();
        assert_eq!(n.upper_bound_level(), None);
        assert!(n.artificial_noise().is_err());
    }

    #[test]
    fn f_delta_boundary_and_monotonicity() {
        assert_eq!(f_delta(2, 0.0).unwrap(), 0.0);
        assert!(f_delta(2, 0.5).is_err());
        assert!(f_delta(2, -0.01).is_err());
        assert!(f_delta(1, 0.1).is_err());
        // Monotone increasing, f(δ) ∈ [δ, 1/d).
        for d in [2usize, 3, 4, 8] {
            let mut prev = 0.0;
            let hi = 1.0 / d as f64;
            for k in 1..50 {
                let delta = hi * k as f64 / 50.0;
                let f = f_delta(d, delta).unwrap();
                assert!(f > prev, "f not increasing at d={d}, δ={delta}");
                assert!(f < hi, "f(δ) ≥ 1/d at d={d}, δ={delta}");
                assert!(f >= delta - 1e-12, "f(δ) < δ at d={d}, δ={delta}");
                prev = f;
            }
        }
    }

    #[test]
    fn f_delta_golden_values() {
        // Closed forms by hand: d = 2 gives f(δ) = 2δ/(1+2δ).
        assert!((f_delta(2, 0.25).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((f_delta(2, 0.1).unwrap() - 0.2 / 1.2).abs() < 1e-12);
        // d = 4: f(δ) = (4 + (1−4δ)/(18δ))⁻¹; at δ = 0.125 the tail is
        // 0.5/2.25 = 2/9, so f = 1/(4 + 2/9) = 9/38.
        assert!((f_delta(4, 0.125).unwrap() - 9.0 / 38.0).abs() < 1e-12);
    }

    #[test]
    fn f_delta_approaches_one_over_d() {
        // As δ → 1/d, f(δ) → 1/d (Claim 15 / Figure 1).
        let f = f_delta(2, 0.4999).unwrap();
        assert!((f - 0.5).abs() < 1e-3);
        let f4 = f_delta(4, 0.2499).unwrap();
        assert!((f4 - 0.25).abs() < 1e-3);
    }

    #[test]
    fn corollary_14_bound_holds_for_uniform_matrices() {
        for d in [2usize, 3, 4, 8] {
            for k in 0..10 {
                let delta = (1.0 / d as f64) * k as f64 / 10.0 * 0.99;
                let n = NoiseMatrix::uniform(d, delta).unwrap();
                let (norm, bound) = verify_inverse_norm_bound(&n).unwrap();
                assert!(
                    norm <= bound + 1e-9,
                    "‖N⁻¹‖={norm} > bound={bound} at d={d}, δ={delta}"
                );
            }
        }
    }

    #[test]
    fn artificial_noise_uniformizes_binary_channel() {
        let n = NoiseMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.25, 0.75]]).unwrap();
        let red = n.artificial_noise().unwrap();
        let delta = n.upper_bound_level().unwrap();
        assert!((red.source_level() - delta).abs() < 1e-12);
        assert!((red.uniform_level() - f_delta(2, delta).unwrap()).abs() < 1e-12);
        let composed = n.compose(red.artificial()).unwrap();
        assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-9));
    }

    #[test]
    fn artificial_noise_on_4_letter_alphabet() {
        // The SSF alphabet Σ = {0,1}² with a lopsided but δ-upper-bounded
        // channel.
        let n = NoiseMatrix::from_rows(vec![
            vec![0.82, 0.06, 0.06, 0.06],
            vec![0.02, 0.90, 0.05, 0.03],
            vec![0.04, 0.04, 0.88, 0.04],
            vec![0.06, 0.02, 0.02, 0.90],
        ])
        .unwrap();
        let red = n.artificial_noise().unwrap();
        let composed = n.compose(red.artificial()).unwrap();
        assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-9));
        assert!(red.uniform_level() < 0.25);
    }

    #[test]
    fn artificial_noise_of_uniform_channel_keeps_level_reasonable() {
        // Even a channel that is already uniform gets re-uniformized at
        // level f(δ) ≥ δ; the map is not the identity on uniform inputs.
        let n = NoiseMatrix::uniform(2, 0.2).unwrap();
        let red = n.artificial_noise().unwrap();
        assert!(red.uniform_level() >= 0.2);
        let composed = n.compose(red.artificial()).unwrap();
        assert!(composed.is_uniform_with_level(red.uniform_level(), 1e-9));
    }

    #[test]
    fn artificial_noise_of_noiseless_channel_is_identity() {
        let n = NoiseMatrix::noiseless(3);
        let red = n.artificial_noise().unwrap();
        assert_eq!(red.uniform_level(), 0.0);
        assert!(red
            .artificial()
            .as_matrix()
            .approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn compose_requires_matching_dims() {
        let a = NoiseMatrix::uniform(2, 0.1).unwrap();
        let b = NoiseMatrix::uniform(3, 0.1).unwrap();
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn inverse_norm_bound_rejects_bad_params() {
        assert!(inverse_norm_bound(1, 0.1).is_err());
        assert!(inverse_norm_bound(2, 0.5).is_err());
        assert!(inverse_norm_bound(2, -0.1).is_err());
        assert!((inverse_norm_bound(2, 0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn into_matrix_roundtrip() {
        let n = NoiseMatrix::uniform(2, 0.3).unwrap();
        let m = n.clone().into_matrix();
        assert_eq!(NoiseMatrix::new(m).unwrap(), n);
    }
}
