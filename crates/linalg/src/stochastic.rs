//! Predicates and helpers for (weakly-)stochastic matrices.
//!
//! Definition 9 of the paper: a matrix is *weakly-stochastic* if each row
//! sums to 1; it is *stochastic* if additionally every entry is
//! non-negative. Rows of a stochastic matrix are probability distributions —
//! in the noisy PULL model, row `σ` of the noise matrix is the distribution
//! of the observed message when `σ` was displayed.

use crate::{LinalgError, Matrix, Result};

/// Default absolute tolerance used by the stochasticity predicates.
///
/// Noise matrices in this workspace are constructed from clean closed forms,
/// then pushed through LU solves; `1e-9` comfortably absorbs that numerical
/// error at alphabet sizes `d ≤ 16`.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` if every row of `a` sums to 1 within `tol`
/// (weakly-stochastic, Definition 9).
pub fn is_weakly_stochastic(a: &Matrix, tol: f64) -> bool {
    a.iter_rows()
        .all(|row| (row.iter().sum::<f64>() - 1.0).abs() <= tol)
}

/// Returns `true` if `a` is weakly-stochastic and every entry is
/// `≥ -tol` (stochastic, Definition 9).
pub fn is_stochastic(a: &Matrix, tol: f64) -> bool {
    is_weakly_stochastic(a, tol) && a.as_slice().iter().all(|&x| x >= -tol)
}

/// Validates that `a` is stochastic, reporting the first offending row.
///
/// # Errors
///
/// Returns [`LinalgError::NotStochastic`] naming the first row with a
/// negative entry (below `-tol`) or a row sum differing from 1 by more than
/// `tol`.
///
/// # Example
///
/// ```
/// use np_linalg::{stochastic, Matrix};
///
/// let good = Matrix::from_rows(vec![vec![0.25, 0.75], vec![1.0, 0.0]])?;
/// assert!(stochastic::validate_stochastic(&good, 1e-9).is_ok());
///
/// let bad = Matrix::from_rows(vec![vec![1.2, -0.2], vec![0.5, 0.5]])?;
/// assert!(stochastic::validate_stochastic(&bad, 1e-9).is_err());
/// # Ok::<(), np_linalg::LinalgError>(())
/// ```
pub fn validate_stochastic(a: &Matrix, tol: f64) -> Result<()> {
    for (i, row) in a.iter_rows().enumerate() {
        if let Some(x) = row.iter().find(|&&x| x < -tol) {
            return Err(LinalgError::NotStochastic {
                row: i,
                detail: format!("negative entry {x}"),
            });
        }
        let sum: f64 = row.iter().sum();
        if (sum - 1.0).abs() > tol {
            return Err(LinalgError::NotStochastic {
                row: i,
                detail: format!("row sums to {sum}"),
            });
        }
    }
    Ok(())
}

/// Clamps tiny negative entries (within `tol` of zero) to exactly zero and
/// renormalizes each row to sum to 1.
///
/// This is used after computing `P = N⁻¹·T` (Proposition 16): the result is
/// provably stochastic, but floating-point solves can leave entries like
/// `-1e-17` that would later break exact samplers.
///
/// # Errors
///
/// Returns [`LinalgError::NotStochastic`] if any entry is more negative than
/// `-tol` (i.e. the matrix is genuinely non-stochastic, not just noisy), or
/// if a row sums to zero after clamping.
pub fn sanitize_stochastic(a: &Matrix, tol: f64) -> Result<Matrix> {
    let mut out = a.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for x in row.iter_mut() {
            if *x < 0.0 {
                if *x < -tol {
                    return Err(LinalgError::NotStochastic {
                        row: i,
                        detail: format!("negative entry {x} beyond tolerance {tol}"),
                    });
                }
                *x = 0.0;
            }
        }
        let sum: f64 = row.iter().sum();
        if sum <= 0.0 {
            return Err(LinalgError::NotStochastic {
                row: i,
                detail: "row sums to zero after clamping".into(),
            });
        }
        if (sum - 1.0).abs() > tol {
            return Err(LinalgError::NotStochastic {
                row: i,
                detail: format!("row sums to {sum}"),
            });
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    Ok(out)
}

/// Returns row `i` of a stochastic matrix as an owned probability vector.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn row_distribution(a: &Matrix, i: usize) -> Vec<f64> {
    a.row(i).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stochastic_example() -> Matrix {
        Matrix::from_rows(vec![
            vec![0.7, 0.2, 0.1],
            vec![0.1, 0.8, 0.1],
            vec![0.0, 0.5, 0.5],
        ])
        .unwrap()
    }

    #[test]
    fn stochastic_accepts_valid() {
        let m = stochastic_example();
        assert!(is_weakly_stochastic(&m, DEFAULT_TOL));
        assert!(is_stochastic(&m, DEFAULT_TOL));
        assert!(validate_stochastic(&m, DEFAULT_TOL).is_ok());
    }

    #[test]
    fn weakly_stochastic_allows_negatives() {
        let m = Matrix::from_rows(vec![vec![1.5, -0.5], vec![0.5, 0.5]]).unwrap();
        assert!(is_weakly_stochastic(&m, DEFAULT_TOL));
        assert!(!is_stochastic(&m, DEFAULT_TOL));
        let err = validate_stochastic(&m, DEFAULT_TOL).unwrap_err();
        assert!(matches!(err, LinalgError::NotStochastic { row: 0, .. }));
    }

    #[test]
    fn bad_row_sum_detected() {
        let m = Matrix::from_rows(vec![vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap();
        assert!(!is_weakly_stochastic(&m, DEFAULT_TOL));
        let err = validate_stochastic(&m, DEFAULT_TOL).unwrap_err();
        assert!(matches!(err, LinalgError::NotStochastic { row: 0, .. }));
    }

    #[test]
    fn product_of_stochastic_is_stochastic() {
        // Closure under products — the fact behind Claim 11's setting.
        let a = stochastic_example();
        let b = Matrix::from_rows(vec![
            vec![0.2, 0.3, 0.5],
            vec![0.6, 0.2, 0.2],
            vec![0.25, 0.25, 0.5],
        ])
        .unwrap();
        let ab = a.mul_checked(&b).unwrap();
        assert!(is_stochastic(&ab, DEFAULT_TOL));
    }

    #[test]
    fn inverse_of_stochastic_is_weakly_stochastic() {
        // Claim 12 of the paper.
        let a = stochastic_example();
        let inv = crate::lu::invert(&a).unwrap();
        assert!(is_weakly_stochastic(&inv, 1e-8));
    }

    #[test]
    fn sanitize_clamps_tiny_negatives() {
        let m = Matrix::from_rows(vec![vec![1.0 + 1e-12, -1e-12], vec![0.5, 0.5]]).unwrap();
        let s = sanitize_stochastic(&m, 1e-9).unwrap();
        assert!(is_stochastic(&s, 0.0));
        assert_eq!(s[(0, 1)], 0.0);
    }

    #[test]
    fn sanitize_rejects_genuine_negatives() {
        let m = Matrix::from_rows(vec![vec![1.1, -0.1], vec![0.5, 0.5]]).unwrap();
        assert!(sanitize_stochastic(&m, 1e-9).is_err());
    }

    #[test]
    fn sanitize_rejects_bad_sums() {
        let m = Matrix::from_rows(vec![vec![0.3, 0.3], vec![0.5, 0.5]]).unwrap();
        assert!(sanitize_stochastic(&m, 1e-9).is_err());
    }

    #[test]
    fn row_distribution_extracts_row() {
        let m = stochastic_example();
        assert_eq!(row_distribution(&m, 2), vec![0.0, 0.5, 0.5]);
    }
}
