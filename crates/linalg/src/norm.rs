//! Matrix and vector norms.
//!
//! The analysis in Section 4 of the paper is carried out in the `‖·‖∞`
//! operator norm, which for a matrix equals the maximum absolute row sum
//! (Eq. (4) in the paper). Corollary 14 bounds `‖N⁻¹‖∞ ≤ (d−1)/(1−dδ)` for
//! every δ-upper-bounded `N`; [`operator_inf_norm`] lets tests verify that
//! bound directly.

use crate::Matrix;

/// The `ℓ∞` norm of a vector: `max_i |v_i|`.
///
/// Returns `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(np_linalg::norm::vec_inf_norm(&[1.0, -3.0, 2.0]), 3.0);
/// ```
pub fn vec_inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// The `ℓ1` norm of a vector: `Σ_i |v_i|`.
pub fn vec_l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// The operator norm induced by `‖·‖∞`, i.e. the maximum absolute row sum
/// (Eq. (4) of the paper):
///
/// `‖A‖∞ = max_i Σ_j |A_ij|`.
///
/// # Example
///
/// ```
/// use np_linalg::{norm::operator_inf_norm, Matrix};
///
/// let a = Matrix::from_rows(vec![vec![1.0, -2.0], vec![0.5, 0.5]])?;
/// assert_eq!(operator_inf_norm(&a), 3.0);
/// # Ok::<(), np_linalg::LinalgError>(())
/// ```
pub fn operator_inf_norm(a: &Matrix) -> f64 {
    a.iter_rows().map(vec_l1_norm).fold(0.0, f64::max)
}

/// The maximum absolute entry of a matrix (`max norm`), used for coarse
/// numerical-error reporting.
pub fn max_norm(a: &Matrix) -> f64 {
    vec_inf_norm(a.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_norms() {
        assert_eq!(vec_inf_norm(&[]), 0.0);
        assert_eq!(vec_inf_norm(&[-5.0, 4.0]), 5.0);
        assert_eq!(vec_l1_norm(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(vec_l1_norm(&[]), 0.0);
    }

    #[test]
    fn operator_norm_of_stochastic_matrix_is_one() {
        let a = Matrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap();
        assert!((operator_inf_norm(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn operator_norm_picks_worst_row() {
        let a = Matrix::from_rows(vec![vec![1.0, 1.0, 1.0], vec![-2.0, 2.0, 0.0]]).unwrap();
        assert_eq!(operator_inf_norm(&a), 4.0);
    }

    #[test]
    fn operator_norm_is_submultiplicative() {
        let a = Matrix::from_rows(vec![vec![0.5, -1.5], vec![2.0, 0.25]]).unwrap();
        let b = Matrix::from_rows(vec![vec![-0.75, 1.0], vec![0.1, -2.0]]).unwrap();
        let ab = a.mul_checked(&b).unwrap();
        assert!(operator_inf_norm(&ab) <= operator_inf_norm(&a) * operator_inf_norm(&b) + 1e-12);
    }

    #[test]
    fn operator_norm_bounds_vector_image() {
        // ‖A·x‖∞ ≤ ‖A‖∞ · ‖x‖∞ by definition of the induced norm.
        let a = Matrix::from_rows(vec![vec![0.2, -0.9], vec![1.1, 0.4]]).unwrap();
        let x = [0.3, -1.0];
        let ax = a.mul_vec(&x).unwrap();
        assert!(vec_inf_norm(&ax) <= operator_inf_norm(&a) * vec_inf_norm(&x) + 1e-12);
    }

    #[test]
    fn max_norm_matches_flat_max() {
        let a = Matrix::from_rows(vec![vec![-7.0, 2.0], vec![3.0, 6.5]]).unwrap();
        assert_eq!(max_norm(&a), 7.0);
    }
}
