//! Dense linear algebra and noise-matrix toolkit for the noisy PULL model.
//!
//! This crate provides the mathematical substrate required by Section 4 of
//! *Fast and Robust Information Spreading in the Noisy PULL Model*
//! (D'Archivio, Korman, Natale, Vacus; PODC 2025 / arXiv:2411.02560):
//!
//! * [`Matrix`] — a small row-major dense `f64` matrix with checked
//!   constructors and the usual arithmetic.
//! * [`lu`] — LU decomposition with partial pivoting, used to invert noise
//!   matrices when deriving the *artificial noise* of Theorem 8.
//! * [`norm`] — the `‖·‖∞` operator norm (maximum absolute row sum,
//!   Eq. (4) of the paper), used to verify Corollary 14.
//! * [`stochastic`] — predicates for (weakly-)stochastic matrices
//!   (Definition 9).
//! * [`noise`] — the [`noise::NoiseMatrix`] newtype with the paper's
//!   δ-lower-bounded / δ-upper-bounded / δ-uniform classes (Definition 1),
//!   the noise-level map `f(δ)` (Definition 7), and
//!   [`noise::NoiseMatrix::artificial_noise`], the constructive proof of
//!   Proposition 16: a stochastic `P` with `N·P` exactly `f(δ)`-uniform.
//!
//! # Example
//!
//! Derive the artificial noise for an asymmetric binary channel and check
//! that the composed channel is uniform:
//!
//! ```
//! use np_linalg::noise::NoiseMatrix;
//!
//! // A 0.2-upper-bounded, non-uniform binary noise matrix.
//! let n = NoiseMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
//! let delta = n.upper_bound_level().unwrap();
//! let reduction = n.artificial_noise().unwrap();
//! let composed = n.compose(reduction.artificial()).unwrap();
//! assert!(composed.is_uniform_with_level(reduction.uniform_level(), 1e-9));
//! assert!(reduction.uniform_level() < 0.5 && reduction.uniform_level() >= delta);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable errors (experiment workers
// would die mid-batch); tests are exempt. `.expect()` documenting an
// infallible-by-construction case is allowed but audited by
// `cargo xtask check`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
mod matrix;

pub mod lu;
pub mod noise;
pub mod norm;
pub mod stochastic;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
