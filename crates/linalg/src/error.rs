use std::fmt;

/// Errors produced by the linear-algebra and noise-matrix toolkit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A constructor received rows of inconsistent length, or zero
    /// dimensions.
    BadShape {
        /// Human-readable description of the shape violation.
        detail: String,
    },
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimensions of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// inverted or solved against.
    Singular,
    /// A matrix expected to be stochastic failed validation.
    NotStochastic {
        /// Index of the first offending row.
        row: usize,
        /// Description of the violation (negative entry or bad row sum).
        detail: String,
    },
    /// A noise matrix failed a δ-class requirement (Definition 1 of the
    /// paper).
    NoiseClassViolation {
        /// Description of the violated requirement.
        detail: String,
    },
    /// A scalar parameter was outside its admissible range.
    ParameterOutOfRange {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Description of the admissible range.
        range: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::BadShape { detail } => write!(f, "bad matrix shape: {detail}"),
            LinalgError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotStochastic { row, detail } => {
                write!(f, "matrix is not stochastic at row {row}: {detail}")
            }
            LinalgError::NoiseClassViolation { detail } => {
                write!(f, "noise-matrix class violation: {detail}")
            }
            LinalgError::ParameterOutOfRange { name, value, range } => {
                write!(f, "parameter `{name}` = {value} outside {range}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            LinalgError::BadShape {
                detail: "ragged".into(),
            },
            LinalgError::DimensionMismatch {
                left: (2, 2),
                right: (3, 3),
            },
            LinalgError::Singular,
            LinalgError::NotStochastic {
                row: 1,
                detail: "row sums to 0.9".into(),
            },
            LinalgError::NoiseClassViolation {
                detail: "diagonal too small".into(),
            },
            LinalgError::ParameterOutOfRange {
                name: "delta",
                value: 0.7,
                range: "[0, 0.5)".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinalgError::Singular, LinalgError::Singular);
        assert_ne!(
            LinalgError::Singular,
            LinalgError::BadShape { detail: "x".into() }
        );
    }
}
