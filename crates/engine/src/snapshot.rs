//! Versioned binary snapshots of a mid-run [`crate::world::World`] —
//! the `np-snap/v1` format.
//!
//! A snapshot captures everything the round loop needs to continue a run
//! in a fresh process: the round counter, the population configuration,
//! the channel (kind, sampling mode, and the exact noise rows), the
//! fault-plan cursor and in-flight fault effects (ramp, sleep horizons),
//! the optional opinion series and trace, and the whole protocol state.
//! It deliberately excludes the worker-thread count (a pure performance
//! knob), any custom [`crate::metrics::RunObserver`] (observers are code,
//! not data), and all wall-clock [`crate::metrics::StageTimings`]
//! (nondeterministic by nature).
//!
//! # The byte-identical-continuation contract
//!
//! Because every draw comes from a per-`(seed, round, agent, stage)`
//! stream ([`crate::streams`]), no RNG state needs serializing: running
//! rounds `0..T` straight produces the same trajectory — and the same
//! trace/summary artifacts — as snapshotting at any `t`, restoring in a
//! fresh process, and running `t..T`, at any thread count on either side.
//! `World::snapshot`/`World::restore` round-trip every field that feeds
//! the trajectory; the continuation tests in the workspace root pin the
//! contract for SF, SSF and SF-ALT, with and without active fault plans.
//!
//! # Encoding
//!
//! Hand-rolled little-endian binary, no serde (mirroring the hand-rolled
//! JSON writers in `np-bench`): integers as fixed-width little-endian
//! bytes, `f64` via [`f64::to_bits`] (bit-exact round trips, including
//! negative zero), strings as a `u64` length followed by UTF-8 bytes.
//! Encode→decode→encode is byte-equal by construction; the proptest suite
//! pins it. Decoders must consume the buffer exactly —
//! [`SnapReader::finish`] rejects trailing bytes, so truncated or
//! oversized payloads cannot slip through.
//!
//! Protocol states opt in by implementing [`SnapshotState`] (columnar
//! ports) or [`SnapshotAgent`] (scalar agents; the blanket impl lifts an
//! agent codec to its [`ScalarState`]). Each implementation carries a
//! `SNAP_TAG` naming its layout version; restoring a snapshot under a
//! different tag fails loudly instead of misreading bytes.

use crate::metrics::RoundMetrics;
use crate::opinion::Opinion;
use crate::population::Role;
use crate::protocol::{AgentState, ColumnarState, ScalarState};
use crate::{EngineError, Result};

/// The format magic, written first in every snapshot.
pub const SNAP_MAGIC: &str = "np-snap/v1";

/// The `np-snap/v2` magic: identical to v1 except for one extra section —
/// the topology spec, right after the sampling-mode byte — emitted only by
/// worlds running on a non-complete [`crate::topology::Topology`].
/// Complete-graph worlds keep writing byte-identical v1 snapshots, so
/// every pre-topology snapshot still restores unchanged.
pub const SNAP_MAGIC_V2: &str = "np-snap/v2";

fn bad(detail: impl Into<String>) -> EngineError {
    EngineError::BadSnapshot {
        detail: detail.into(),
    }
}

/// Append-only writer for the `np-snap/v1` binary encoding.
///
/// All multi-byte integers are little-endian; see the module docs for the
/// full encoding. The writer is infallible — errors exist only on the
/// decode side.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer into its byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (sizes are platform-independent on
    /// disk).
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// Writes an `f64` via its IEEE-754 bit pattern — bit-exact round
    /// trips, no formatting involved.
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Writes a boolean as one byte (0/1).
    pub fn put_bool(&mut self, x: bool) {
        self.put_u8(u8::from(x));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes an [`Opinion`] as its symbol index.
    pub fn put_opinion(&mut self, o: Opinion) {
        self.put_u8(o.as_byte());
    }

    /// Writes an optional [`Opinion`]: 0 = none, 1 = zero, 2 = one.
    pub fn put_opt_opinion(&mut self, o: Option<Opinion>) {
        match o {
            None => self.put_u8(0),
            Some(o) => self.put_u8(1 + o.as_byte()),
        }
    }

    /// Writes a [`Role`]: 0 = non-source, 1/2 = source preferring 0/1.
    pub fn put_role(&mut self, r: Role) {
        match r {
            Role::NonSource => self.put_u8(0),
            Role::Source(p) => self.put_u8(1 + p.as_byte()),
        }
    }
}

/// Cursor-based reader matching [`SnapWriter`], byte for byte.
///
/// Every accessor returns [`EngineError::BadSnapshot`] on underrun or
/// malformed data; [`SnapReader::finish`] additionally rejects snapshots
/// with unconsumed trailing bytes.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte buffer for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                bad(format!(
                    "truncated snapshot: wanted {len} bytes at offset {}, have {}",
                    self.pos,
                    self.remaining()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        // xtask-allow: unwrap (take returned exactly 4 bytes)
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        // xtask-allow: unwrap (take returned exactly 8 bytes)
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64> {
        let bytes = self.take(8)?;
        // xtask-allow: unwrap (take returned exactly 8 bytes)
        Ok(i64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that do
    /// not fit the platform.
    pub fn take_usize(&mut self) -> Result<usize> {
        let x = self.take_u64()?;
        usize::try_from(x).map_err(|_| bad(format!("size {x} exceeds this platform's usize")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a boolean byte, rejecting values other than 0/1.
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            x => Err(bad(format!("invalid boolean byte {x}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string payload is not UTF-8"))
    }

    /// Reads an [`Opinion`] symbol index.
    pub fn take_opinion(&mut self) -> Result<Opinion> {
        let i = self.take_u8()?;
        Opinion::from_index(usize::from(i)).ok_or_else(|| bad(format!("invalid opinion byte {i}")))
    }

    /// Reads an optional [`Opinion`] (see
    /// [`SnapWriter::put_opt_opinion`]).
    pub fn take_opt_opinion(&mut self) -> Result<Option<Opinion>> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(Opinion::Zero)),
            2 => Ok(Some(Opinion::One)),
            x => Err(bad(format!("invalid optional-opinion byte {x}"))),
        }
    }

    /// Reads a [`Role`] (see [`SnapWriter::put_role`]).
    pub fn take_role(&mut self) -> Result<Role> {
        match self.take_u8()? {
            0 => Ok(Role::NonSource),
            1 => Ok(Role::Source(Opinion::Zero)),
            2 => Ok(Role::Source(Opinion::One)),
            x => Err(bad(format!("invalid role byte {x}"))),
        }
    }

    /// Requires the buffer to be fully consumed — the last step of every
    /// decoder, so length mismatches surface as errors rather than silent
    /// misalignment.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadSnapshot`] if bytes remain.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(bad(format!(
                "snapshot has {} unconsumed trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// A scalar agent state that can round-trip through the `np-snap/v1`
/// encoding. Implementing this lifts the codec to the agent's
/// [`ScalarState`] via the blanket [`SnapshotState`] impl.
pub trait SnapshotAgent: AgentState + Sized {
    /// Layout-version tag for this agent encoding (e.g. `"sf-agent/v1"`).
    /// Restoring under a different tag is rejected.
    const SNAP_TAG: &'static str;

    /// Appends this agent's full state to `w`.
    fn encode_agent(&self, w: &mut SnapWriter);

    /// Decodes one agent previously written by
    /// [`SnapshotAgent::encode_agent`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadSnapshot`] on malformed bytes.
    fn decode_agent(r: &mut SnapReader<'_>) -> Result<Self>;
}

/// A whole-population protocol state that can round-trip through the
/// `np-snap/v1` encoding — the hook [`crate::world::World::snapshot`]
/// and [`crate::world::World::restore`] are generic over.
pub trait SnapshotState: ColumnarState + Sized {
    /// Layout-version tag for this state encoding (e.g.
    /// `"sf-columns/v1"`). Scalar and columnar layouts of the same
    /// protocol carry distinct tags: their bytes are not interchangeable.
    const SNAP_TAG: &'static str;

    /// Appends the full population state to `w`.
    fn encode_state(&self, w: &mut SnapWriter);

    /// Decodes a state previously written by
    /// [`SnapshotState::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadSnapshot`] on malformed bytes.
    fn decode_state(r: &mut SnapReader<'_>) -> Result<Self>;
}

/// Encodes one recorded [`RoundMetrics`] (trace persistence).
pub(crate) fn encode_round_metrics(m: &RoundMetrics, w: &mut SnapWriter) {
    w.put_u64(m.round);
    w.put_usize(m.n);
    w.put_usize(m.correct);
    w.put_usize(m.stages.len());
    for &(stage, count) in &m.stages {
        w.put_u32(stage);
        w.put_usize(count);
    }
    w.put_usize(m.weak_formed);
    w.put_usize(m.weak_correct);
    w.put_usize(m.faults.len());
    for label in &m.faults {
        w.put_str(label);
    }
}

/// Decodes one [`RoundMetrics`] written by [`encode_round_metrics`].
pub(crate) fn decode_round_metrics(r: &mut SnapReader<'_>) -> Result<RoundMetrics> {
    let round = r.take_u64()?;
    let n = r.take_usize()?;
    let correct = r.take_usize()?;
    let stage_count = r.take_usize()?;
    let mut stages = Vec::with_capacity(stage_count.min(r.remaining()));
    for _ in 0..stage_count {
        let stage = r.take_u32()?;
        let count = r.take_usize()?;
        stages.push((stage, count));
    }
    let weak_formed = r.take_usize()?;
    let weak_correct = r.take_usize()?;
    let fault_count = r.take_usize()?;
    let mut faults = Vec::with_capacity(fault_count.min(r.remaining()));
    for _ in 0..fault_count {
        faults.push(r.take_str()?);
    }
    Ok(RoundMetrics {
        round,
        n,
        correct,
        stages,
        weak_formed,
        weak_correct,
        faults,
    })
}

impl<A: SnapshotAgent> SnapshotState for ScalarState<A> {
    const SNAP_TAG: &'static str = A::SNAP_TAG;

    fn encode_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.agents().len());
        for agent in self.agents() {
            agent.encode_agent(w);
        }
    }

    fn decode_state(r: &mut SnapReader<'_>) -> Result<Self> {
        let n = r.take_usize()?;
        let mut agents = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            agents.push(A::decode_agent(r)?);
        }
        Ok(ScalarState::from_agents(agents))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_byte_exactly() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_usize(12345);
        w.put_f64(-0.0);
        w.put_f64(std::f64::consts::PI);
        w.put_bool(true);
        w.put_str("np-snap/v1 ünïcode");
        w.put_opinion(Opinion::One);
        w.put_opt_opinion(None);
        w.put_opt_opinion(Some(Opinion::Zero));
        w.put_role(Role::Source(Opinion::One));
        w.put_role(Role::NonSource);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_usize().unwrap(), 12345);
        let z = r.take_f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "negative zero survives");
        assert_eq!(r.take_f64().unwrap(), std::f64::consts::PI);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "np-snap/v1 ünïcode");
        assert_eq!(r.take_opinion().unwrap(), Opinion::One);
        assert_eq!(r.take_opt_opinion().unwrap(), None);
        assert_eq!(r.take_opt_opinion().unwrap(), Some(Opinion::Zero));
        assert_eq!(r.take_role().unwrap(), Role::Source(Opinion::One));
        assert_eq!(r.take_role().unwrap(), Role::NonSource);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_errors_not_panics() {
        let mut w = SnapWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.take_u64().is_err());
        let mut r = SnapReader::new(&bytes[..2]);
        assert!(r.take_u32().is_err());
        let mut r = SnapReader::new(&[]);
        assert!(r.take_u8().is_err());
        assert!(r.take_str().is_err());
    }

    #[test]
    fn invalid_enum_bytes_are_rejected() {
        for bytes in [[2u8], [3u8], [9u8]] {
            let mut r = SnapReader::new(&bytes);
            if bytes[0] >= 2 {
                assert!(r.take_opinion().is_err() || bytes[0] < 2);
            }
        }
        let mut r = SnapReader::new(&[3]);
        assert!(r.take_opt_opinion().is_err());
        let mut r = SnapReader::new(&[3]);
        assert!(r.take_role().is_err());
        let mut r = SnapReader::new(&[2]);
        assert!(r.take_bool().is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let _ = r.take_u8().unwrap();
        let err = r.finish().unwrap_err();
        assert!(matches!(err, EngineError::BadSnapshot { .. }), "{err}");
        assert_eq!(r.remaining(), 1);
        let _ = r.take_u8().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn oversized_string_length_is_an_error() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.take_str().is_err());
    }

    #[test]
    fn writer_accessors() {
        let mut w = SnapWriter::new();
        assert!(w.is_empty());
        w.put_str(SNAP_MAGIC);
        assert_eq!(w.len(), 8 + SNAP_MAGIC.len());
        assert!(!w.is_empty());
    }
}
