//! The round loop: wires a protocol, a population, and a noisy channel
//! together and runs the system to consensus.
//!
//! # Execution model
//!
//! The world holds a [`ColumnarState`] — one struct-of-arrays state for the
//! whole population — and runs each round in two chunked passes over
//! word-aligned agent chunks ([`crate::packed::chunk_len_for`]):
//!
//! 1. **display**: each chunk writes its agents' symbols into its slice
//!    of the packed bit-plane display store ([`crate::packed`]) and
//!    tallies a partial display histogram from plane popcounts;
//! 2. **observe + update (fused)**: the summed histogram seeds the
//!    channel's round context, then each chunk samples its agents'
//!    observations and applies their updates in the same pass — no
//!    global observation matrix round-trip between phases.
//!
//! Chunks are fanned out over scoped worker threads with
//! [`crate::runner::scatter`]; every piece of randomness comes from a
//! per-agent stream addressed by `(seed, round, agent, stage)`
//! ([`crate::streams`]), so the trajectory is **bit-identical for any
//! thread count and any chunk size**. `NOISY_PULL_THREADS` (or
//! [`World::set_threads`]) only changes wall-clock time, never results.
//!
//! The exact channel ([`ChannelKind::Exact`]) samples literal displays,
//! so before its fused pass the packed planes are unpacked once into a
//! scalar display vector — the seam that keeps the literal path (and its
//! distribution-equivalence tests) byte-identical to before.

use crate::streams::StreamRng;
use np_linalg::noise::NoiseMatrix;
use rand::Rng;

use crate::channel::{Channel, ChannelKind, SamplingMode};
use crate::faults::{FaultEvent, FaultPlan, ScheduledFault};
use crate::metrics::{
    OpinionSeries, RoundMetrics, RunObserver, RunOutcome, StageClock, StageTimings, TraceRecorder,
};
use crate::opinion::Opinion;
use crate::packed::{self, PackedDisplays};
use crate::population::PopulationConfig;
use crate::protocol::{ColumnarProtocol, ColumnarState, Protocol};
use crate::runner;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotState, SNAP_MAGIC, SNAP_MAGIC_V2};
use crate::streams::{RoundStreams, StreamStage};
use crate::topology::{Topology, TopologySpec};
use crate::{EngineError, Result};

/// A noise ramp in flight: the channel is rebuilt each round at the
/// linearly interpolated uniform level until `over` rounds have passed.
#[derive(Debug, Clone, Copy)]
struct ActiveRamp {
    from: f64,
    to: f64,
    over: u64,
    start: u64,
}

/// A running instance of the noisy PULL model: one population, one
/// protocol state, one noise matrix, one master seed.
///
/// Construction is deterministic given the seed: two worlds built with the
/// same arguments produce identical executions, regardless of the thread
/// count either one uses.
///
/// Scalar protocols ([`Protocol`]) run through the blanket columnar
/// adapter; the extra methods [`World::agent`], [`World::iter_agents`] and
/// [`World::corrupt_agents`] are available for them.
///
/// # Example
///
/// See the crate-level example in [`crate`].
pub struct World<P: ColumnarProtocol> {
    config: PopulationConfig,
    channel: Channel,
    /// The interaction graph agents sample over. Defaults to the complete
    /// graph (the paper's model), in which case the round loop takes the
    /// unrestricted hot path and this field costs nothing.
    topology: Topology,
    state: P::State,
    /// Bit-plane packed display store — the round loop's working layout.
    /// Display histograms come from its plane popcounts.
    packed: PackedDisplays,
    /// Scalar display seam: refreshed from `packed` only when the exact
    /// channel (which samples literal displays) needs it. Never
    /// serialized; stale between exact rounds.
    displays: Vec<usize>,
    observations: Vec<u64>,
    seed: u64,
    threads: usize,
    round: u64,
    series: Option<OpinionSeries>,
    trace: Option<TraceRecorder>,
    observer: Option<Box<dyn RunObserver>>,
    /// The opinion currently counted as correct. Starts as the
    /// configuration's majority preference and flips with
    /// [`FaultEvent::FlipSources`] (the environment's trend change).
    correct_opinion: Opinion,
    /// Scheduled fault events, sorted by round; `next_fault` indexes the
    /// first not-yet-applied one.
    faults: Vec<ScheduledFault<P::State>>,
    next_fault: usize,
    ramp: Option<ActiveRamp>,
    /// Per-agent sleep horizon: agent `id` skips its update in every
    /// round `r < asleep_until[id]`. Empty until a sleep event fires.
    asleep_until: Vec<u64>,
}

impl<P: ColumnarProtocol> World<P> {
    /// Builds a world: initializes one agent per role in the canonical
    /// layout of [`PopulationConfig::role_of`], each from its own
    /// [`StreamStage::Init`] stream.
    ///
    /// The worker-thread count defaults to
    /// [`runner::suggested_threads`]`()`; override with
    /// [`World::set_threads`]. Results never depend on it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AlphabetMismatch`] if the protocol's alphabet
    /// size differs from the noise matrix's.
    pub fn new(
        protocol: &P,
        config: PopulationConfig,
        noise: &NoiseMatrix,
        kind: ChannelKind,
        seed: u64,
    ) -> Result<Self> {
        if protocol.alphabet_size() != noise.dim() {
            return Err(EngineError::AlphabetMismatch {
                protocol: protocol.alphabet_size(),
                noise: noise.dim(),
            });
        }
        World::with_channel(protocol, config, Channel::new(noise, kind), seed)
    }

    /// Builds a world around a pre-configured [`Channel`] (e.g. one using
    /// [`crate::channel::SamplingMode::WithoutReplacement`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AlphabetMismatch`] if the protocol's alphabet
    /// size differs from the channel's.
    pub fn with_channel(
        protocol: &P,
        config: PopulationConfig,
        channel: Channel,
        seed: u64,
    ) -> Result<Self> {
        if protocol.alphabet_size() != channel.alphabet_size() {
            return Err(EngineError::AlphabetMismatch {
                protocol: protocol.alphabet_size(),
                noise: channel.alphabet_size(),
            });
        }
        crate::invariants::check_population(&config);
        let state = protocol.init_state(&config, &RoundStreams::new(seed, 0));
        let n = config.n();
        let d = channel.alphabet_size();
        let correct_opinion = config.correct_opinion();
        // A complete topology materializes no neighbor lists and only
        // rejects the empty population, which the config already forbids.
        let topology = Topology::build(TopologySpec::Complete, n, seed)
            // xtask-allow: unwrap (infallible by construction: Complete over n >= 1 cannot fail)
            .expect("complete topology over a nonempty population cannot fail");
        Ok(World {
            config,
            channel,
            topology,
            state,
            packed: PackedDisplays::new(n, d),
            displays: vec![0; n],
            observations: vec![0; n * d],
            seed,
            threads: runner::suggested_threads(),
            round: 0,
            series: None,
            trace: None,
            observer: None,
            correct_opinion,
            faults: Vec::new(),
            next_fault: 0,
            ramp: None,
            asleep_until: Vec::new(),
        })
    }

    /// The population configuration.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Number of completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The master seed this world was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker-thread count used for intra-round chunk parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    /// A pure performance knob: the trajectory is identical for every
    /// value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The interaction graph agents sample over (the complete graph by
    /// default).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Restricts sampling to a graph topology, regenerating the neighbor
    /// lists deterministically from the master seed. A world on the
    /// complete graph ([`TopologySpec::Complete`]) is byte-identical to one
    /// that never called this method.
    ///
    /// Must be called before the first round: a trajectory is a pure
    /// function of `(protocol, config, channel, topology, seed)`, and
    /// swapping the graph mid-run would silently invalidate every
    /// recorded metric.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadTopology`] if rounds have already run, if
    /// the spec cannot be realized over this population (see
    /// [`Topology::build`]), or if the channel samples without replacement
    /// and `h` exceeds the graph's minimum degree (some agent would have
    /// too few distinct neighbors to draw).
    pub fn set_topology(&mut self, spec: TopologySpec) -> Result<()> {
        if self.round != 0 {
            return Err(EngineError::BadTopology {
                detail: format!(
                    "topology must be chosen before the first round (world is at round {})",
                    self.round
                ),
            });
        }
        let topology = Topology::build(spec, self.config.n(), self.seed)?;
        if self.channel.sampling_mode() == SamplingMode::WithoutReplacement
            && !topology.is_complete()
            && self.config.h() > topology.min_degree()
        {
            return Err(EngineError::BadTopology {
                detail: format!(
                    "cannot draw h = {} distinct neighbors without replacement on {}: \
                     minimum degree is {}",
                    self.config.h(),
                    spec.label(),
                    topology.min_degree()
                ),
            });
        }
        self.topology = topology;
        Ok(())
    }

    /// Read access to the whole-population protocol state.
    pub fn state(&self) -> &P::State {
        &self.state
    }

    /// Mutable access to the whole-population protocol state (columnar
    /// adversary hooks go through here).
    pub fn state_mut(&mut self) -> &mut P::State {
        &mut self.state
    }

    /// The current opinion vector, in agent-id order.
    pub fn opinions(&self) -> Vec<Opinion> {
        (0..self.state.len())
            .map(|id| self.state.opinion(id))
            .collect()
    }

    /// Enables per-round recording of opinion counts (see
    /// [`World::series`]).
    pub fn record_series(&mut self) {
        if self.series.is_none() {
            self.series = Some(OpinionSeries::new(self.config.n()));
        }
    }

    /// The recorded opinion series, if [`World::record_series`] was called.
    pub fn series(&self) -> Option<&OpinionSeries> {
        self.series.as_ref()
    }

    /// Enables the built-in per-round trace: every subsequent
    /// [`World::step`] appends one [`RoundMetrics`] snapshot (and that
    /// round's [`StageTimings`]) to an internal [`TraceRecorder`].
    ///
    /// The metrics are a pure function of the trajectory, so recorded
    /// traces are identical for every thread count; only the timings vary.
    /// When neither this nor [`World::set_observer`] is active, `step`
    /// performs no extra work and no clock reads.
    pub fn record_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(TraceRecorder::new());
        }
    }

    /// The recorded trace, if [`World::record_trace`] was called.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Removes and returns the recorded trace, disabling further
    /// recording (callers that want to keep tracing call
    /// [`World::record_trace`] again).
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take()
    }

    /// Attaches a custom [`RunObserver`] that receives every round's
    /// metrics and timings. Replaces any previous observer; independent of
    /// the built-in trace (both may be active, and both receive identical
    /// snapshots).
    pub fn set_observer(&mut self, observer: Box<dyn RunObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches the custom observer, returning it.
    pub fn take_observer(&mut self) -> Option<Box<dyn RunObserver>> {
        self.observer.take()
    }

    /// Attaches a mid-run fault-injection schedule ([`crate::faults`]).
    /// Replaces any previously scheduled events; effects already applied
    /// (a ramp in flight, sleeping agents, a flipped trend) persist.
    ///
    /// Events fire just before their round executes and draw all
    /// randomness from the per-agent fault streams, so faulted
    /// trajectories remain byte-identical across thread counts.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFaultPlan`] if any event is scheduled at
    /// or before the current round, or has out-of-range parameters (see
    /// [`FaultPlan::validate`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan<P::State>) -> Result<()> {
        plan.validate(self.round, self.channel.alphabet_size())?;
        self.faults = plan.into_events();
        self.next_fault = 0;
        Ok(())
    }

    /// Returns `true` if a nonempty fault plan is attached.
    pub fn has_fault_plan(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Number of fault-plan events that have already fired — the fault
    /// cursor persisted by [`World::snapshot`].
    pub fn fault_cursor(&self) -> usize {
        self.next_fault
    }

    /// Re-attaches a fault plan to a restored world *without* resetting
    /// the fault cursor. Corruption closures are code
    /// (`Arc<dyn StateFault>`), not data, so snapshots persist only the
    /// cursor; after [`World::restore`] the caller supplies the same plan
    /// again and the world continues from the first pending event.
    ///
    /// Fault randomness is addressed by the event's *position in the
    /// plan* ([`crate::streams::StreamStage::Fault`]), which re-attaching
    /// the full plan preserves — so a restored faulted run stays
    /// byte-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFaultPlan`] if the plan has fewer events
    /// than have already fired, or if any *pending* event is invalid
    /// (scheduled at or before the current round, out-of-range
    /// parameters — see [`FaultPlan::validate_from`]).
    pub fn reattach_fault_plan(&mut self, plan: FaultPlan<P::State>) -> Result<()> {
        if plan.len() < self.next_fault {
            return Err(EngineError::BadFaultPlan {
                detail: format!(
                    "plan has {} events but the restored world has already fired {}",
                    plan.len(),
                    self.next_fault
                ),
            });
        }
        plan.validate_from(self.next_fault, self.round, self.channel.alphabet_size())?;
        self.faults = plan.into_events();
        Ok(())
    }

    /// The opinion currently counted as correct — the configuration's
    /// majority preference, unless a [`FaultEvent::FlipSources`] event
    /// flipped the trend.
    pub fn correct_opinion(&self) -> Opinion {
        self.correct_opinion
    }

    /// Applies every event scheduled for the round about to execute,
    /// returning their trace labels. Label counts (agents hit, agents
    /// slept) are deterministic: they derive from the fault streams.
    fn apply_due_faults(&mut self, streams: &RoundStreams) -> Vec<String> {
        let cur = self.round + 1;
        let mut labels = Vec::new();
        while self
            .faults
            .get(self.next_fault)
            .is_some_and(|f| f.round == cur)
        {
            let idx = self.next_fault;
            let event = self.faults[idx].event.clone();
            self.next_fault += 1;
            // Stream index = position in the plan: distinct events are
            // independent even when they share an injection round.
            let stage = StreamStage::Fault(u32::try_from(idx).unwrap_or(u32::MAX));
            match event {
                FaultEvent::Corrupt { frac, label, fault } => {
                    let mut hit = 0usize;
                    for id in 0..self.state.len() {
                        let mut rng = streams.rng(id, stage);
                        // The selection coin is always drawn, so an
                        // agent's corruption never depends on the others.
                        if rng.gen::<f64>() < frac {
                            fault.apply(&mut self.state, id, &mut rng);
                            hit += 1;
                        }
                    }
                    labels.push(format!("{label}:{hit}"));
                }
                FaultEvent::FlipSources => {
                    let flipped = self.state.flip_source_preferences();
                    if flipped > 0 {
                        self.correct_opinion = !self.correct_opinion;
                    }
                    labels.push(format!("flip-sources:{flipped}"));
                }
                FaultEvent::SetNoise { noise } => {
                    self.ramp = None;
                    self.channel = Channel::with_sampling(
                        &noise,
                        self.channel.kind(),
                        self.channel.sampling_mode(),
                    );
                    labels.push(match noise.uniform_level() {
                        Some(level) => format!("set-noise:{level}"),
                        None => "set-noise".to_string(),
                    });
                }
                FaultEvent::RampNoise { from, to, over } => {
                    self.ramp = Some(ActiveRamp {
                        from,
                        to,
                        over,
                        start: cur,
                    });
                    labels.push(format!("ramp-noise:{from}->{to}/{over}"));
                }
                FaultEvent::Sleep { frac, rounds } => {
                    if self.asleep_until.len() != self.state.len() {
                        self.asleep_until = vec![0; self.state.len()];
                    }
                    let mut slept = 0usize;
                    for (id, until) in self.asleep_until.iter_mut().enumerate() {
                        let mut rng = streams.rng(id, stage);
                        if rng.gen::<f64>() < frac {
                            *until = (*until).max(cur + rounds);
                            slept += 1;
                        }
                    }
                    labels.push(format!("sleep:{slept}/{rounds}r"));
                }
            }
        }
        labels
    }

    /// Rebuilds the channel at the interpolated uniform noise level while
    /// a [`FaultEvent::RampNoise`] is in flight. Runs after
    /// [`World::apply_due_faults`], so the injection round executes at
    /// the ramp's `from` level.
    fn advance_ramp(&mut self) {
        let Some(ramp) = self.ramp else { return };
        let cur = self.round + 1;
        let t = cur.saturating_sub(ramp.start).min(ramp.over);
        let level = ramp.from + (ramp.to - ramp.from) * (t as f64 / ramp.over as f64);
        // Endpoints were validated when the plan was attached, and the
        // lerp stays between them, so construction cannot fail.
        if let Ok(noise) = NoiseMatrix::uniform(self.channel.alphabet_size(), level) {
            self.channel =
                Channel::with_sampling(&noise, self.channel.kind(), self.channel.sampling_mode());
        }
        if t >= ramp.over {
            self.ramp = None;
        }
    }

    /// Executes one synchronous round: display → sample+noise → update.
    ///
    /// The round runs as two chunked passes (displays into bit planes with
    /// partial popcount histograms, then a fused observe+update scatter)
    /// over [`World::threads`] scoped workers; the per-chunk invariant
    /// checks name global agent ids, and a panic in any worker is
    /// re-raised on the caller with its original message.
    pub fn step(&mut self) {
        let n = self.config.n();
        let h = self.config.h();
        let streams = RoundStreams::new(self.seed, self.round);
        let threads = self.threads.clamp(1, n);
        let chunk = packed::chunk_len_for(n, threads);

        // Mid-run faults: events scheduled for the round about to execute
        // are applied first (from the per-agent fault streams), then an
        // in-flight noise ramp moves the channel one lerp step. `d` is
        // read after, since SetNoise/RampNoise rebuild the channel.
        let fault_labels = self.apply_due_faults(&streams);
        self.advance_ramp();
        let d = self.channel.alphabet_size();

        // Observability is pay-for-what-you-use: with no trace and no
        // observer attached there are no clock reads and no metrics sweep.
        let observing = self.trace.is_some() || self.observer.is_some();
        let mut clock = if observing {
            Some(StageClock::start())
        } else {
            None
        };
        let mut timings = StageTimings::default();

        // Pass 1: displays into bit planes, one partial popcount histogram
        // per chunk. Summing the partials afterwards gives the exact
        // display histogram without ever materializing scalar symbols.
        let mut disp_counts = vec![0u64; d];
        {
            let state = &self.state;
            let chunks = self.packed.chunks_mut(chunk);
            let mut hists = vec![0u64; chunks.len() * d];
            let jobs: Vec<_> = chunks.into_iter().zip(hists.chunks_mut(d)).collect();
            runner::scatter(threads, jobs, |(mut plane_chunk, hist)| {
                let start = plane_chunk.start();
                let len = plane_chunk.len();
                state.display_chunk_packed(start..start + len, &mut plane_chunk, &streams);
                plane_chunk.histogram_into(hist);
            });
            for partial in hists.chunks(d) {
                for (total, part) in disp_counts.iter_mut().zip(partial) {
                    *total += part;
                }
            }
        }
        // The exact channel samples literal displays, and a
        // graph-restricted round tallies per-neighborhood display
        // histograms, so both pay for unpacking the planes back into the
        // scalar seam vector. The complete-graph aggregated path never
        // does.
        if self.channel.kind() == ChannelKind::Exact || !self.topology.is_complete() {
            self.packed.unpack_into(&mut self.displays);
        }
        if let Some(clock) = clock.as_mut() {
            timings.display = clock.lap();
        }

        // Fused pass 2: noisy observations and updates in one scatter.
        // Each chunk samples its agents' observation counts from their own
        // Observe streams and immediately applies their updates — the
        // observation slice never crosses a thread barrier. Sleeping
        // agents (fault subsystem) are masked out; the mask is `None` on
        // the fault-free fast path.
        {
            let channel = &self.channel;
            let displays = &self.displays;
            let topology = &self.topology;
            let cur = self.round + 1;
            let awake: Option<Vec<bool>> = if self.asleep_until.iter().any(|&until| cur < until) {
                Some(
                    self.asleep_until
                        .iter()
                        .map(|&until| cur >= until)
                        .collect(),
                )
            } else {
                None
            };
            // Pair every state chunk with its observation (and mask)
            // chunk up front: the worker closure receives pre-sliced
            // views and never indexes, so out-of-range access is
            // unrepresentable in the hot loop (panic-path lint).
            let mut mask_chunks = awake.as_deref().map(|mask| mask.chunks(chunk));
            let jobs: Vec<_> = self
                .state
                .chunks_mut(chunk)
                .into_iter()
                .zip(self.observations.chunks_mut((chunk * d).max(1)))
                .enumerate()
                .map(|(i, (view, obs))| {
                    let mask = mask_chunks.as_mut().and_then(Iterator::next);
                    (i * chunk, view, obs, mask)
                })
                .collect();
            if topology.is_complete() {
                // Preconditions (non-empty population, h ≤ n checked at
                // construction) hold here, so take the trusted hot path.
                let ctx = channel.begin_round_from_counts_trusted(disp_counts, h);
                runner::scatter(threads, jobs, |(start, mut view, obs, mask)| {
                    let agents = obs.len() / d.max(1);
                    let range = start..start + agents;
                    channel.fill_observations_chunk(
                        &ctx,
                        displays,
                        h,
                        range.clone(),
                        &streams,
                        obs,
                    );
                    crate::invariants::check_observation_chunk(start, obs, d, h as u64);
                    <P::State as ColumnarState>::step_chunk(
                        &mut view, range, obs, d, &streams, mask,
                    );
                });
            } else {
                // Graph-restricted round: every agent's observation law is
                // local to its neighborhood, so there is no shared round
                // context — the channel collapses per-agent laws on the fly.
                runner::scatter(threads, jobs, |(start, mut view, obs, mask)| {
                    let agents = obs.len() / d.max(1);
                    let range = start..start + agents;
                    channel.fill_observations_topo_chunk(
                        displays,
                        topology,
                        h,
                        range.clone(),
                        &streams,
                        obs,
                    );
                    crate::invariants::check_observation_chunk(start, obs, d, h as u64);
                    <P::State as ColumnarState>::step_chunk(
                        &mut view, range, obs, d, &streams, mask,
                    );
                });
            }
        }

        // The fused pass is timed as `observe`; `update` stays zero under
        // the packed hot path (see `StageTimings`).
        if let Some(clock) = clock.as_mut() {
            timings.observe = clock.lap();
        }

        self.round += 1;
        if let Some(series) = self.series.as_mut() {
            series.push(self.state.count_opinion(Opinion::One));
        }
        if observing {
            let metrics = self.collect_round_metrics(fault_labels);
            if let Some(clock) = clock.as_mut() {
                timings.collect = clock.lap();
            }
            if let Some(trace) = self.trace.as_mut() {
                trace.on_round(&metrics, &timings);
            }
            if let Some(observer) = self.observer.as_mut() {
                observer.on_round(&metrics, &timings);
            }
        }
    }

    /// One O(n) sweep over the population collecting the round snapshot:
    /// correct count, stage occupancy, and weak-opinion accuracy. The
    /// sweep itself is the state's [`ColumnarState::metrics_sweep`] —
    /// columnar ports override it with fused lane passes; the values are
    /// identical to the default per-agent walk by contract.
    fn collect_round_metrics(&self, faults: Vec<String>) -> RoundMetrics {
        let sweep = self.state.metrics_sweep(self.correct_opinion);
        RoundMetrics {
            round: self.round,
            n: self.state.len(),
            correct: sweep.correct,
            stages: sweep.stages,
            weak_formed: sweep.weak_formed,
            weak_correct: sweep.weak_correct,
            faults,
        }
    }

    /// Runs `rounds` rounds unconditionally.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Number of agents currently holding the correct opinion (see
    /// [`World::correct_opinion`]).
    pub fn correct_count(&self) -> usize {
        self.state.count_opinion(self.correct_opinion)
    }

    /// Returns `true` if every agent (sources included) holds the correct
    /// opinion — the paper's consensus condition (Definition 2).
    pub fn is_consensus(&self) -> bool {
        self.correct_count() == self.config.n()
    }

    /// Steps until consensus on the correct opinion or until `budget`
    /// rounds have run. A world already in consensus converges in 0 rounds
    /// without stepping, even at `budget = 0`.
    pub fn run_until_consensus(&mut self, budget: u64) -> RunOutcome {
        if self.is_consensus() {
            return RunOutcome::Converged { rounds: 0 };
        }
        let start = self.round;
        while self.round - start < budget {
            self.step();
            if self.is_consensus() {
                return RunOutcome::Converged {
                    rounds: self.round - start,
                };
            }
        }
        RunOutcome::TimedOut {
            budget,
            correct_at_end: self.correct_count(),
        }
    }

    /// Steps until the consensus has *held* for `window` consecutive rounds
    /// (or the budget runs out), returning the round at which the stable
    /// window began. Used by the self-stabilization persistence experiment:
    /// Definition 2 requires consensus to be reached *and kept*.
    ///
    /// `window = 0` is saturated to 1 (a zero-length persistence
    /// requirement is the same as observing consensus once; the raw value
    /// would underflow the round arithmetic). Consensus is checked before
    /// the first step, so a world already in consensus — e.g. a resumed
    /// persistence run — converges in 0 rounds rather than timing out at
    /// `budget = 0`.
    pub fn run_until_stable_consensus(&mut self, budget: u64, window: u64) -> RunOutcome {
        let window = window.max(1);
        if self.is_consensus() {
            return RunOutcome::Converged { rounds: 0 };
        }
        let start = self.round;
        let mut streak: u64 = 0;
        while self.round - start < budget {
            self.step();
            if self.is_consensus() {
                streak += 1;
                if streak >= window {
                    return RunOutcome::Converged {
                        rounds: (self.round - start).saturating_sub(window - 1),
                    };
                }
            } else {
                streak = 0;
            }
        }
        RunOutcome::TimedOut {
            budget,
            correct_at_end: self.correct_count(),
        }
    }
}

/// Mid-run persistence: available when the protocol's state implements
/// [`SnapshotState`]. See [`crate::snapshot`] for the format and the
/// byte-identical-continuation contract.
impl<P: ColumnarProtocol> World<P>
where
    P::State: SnapshotState,
{
    /// Serializes the world's full trajectory-relevant state as an
    /// `np-snap/v1` byte buffer — or `np-snap/v2` when a non-complete
    /// [`Topology`] is active, which adds exactly one section (the
    /// topology spec, right after the sampling-mode byte; neighbor lists
    /// are regenerated from the seed on restore, never serialized).
    /// Complete-graph worlds emit v1 bytes identical to before the
    /// topology subsystem existed.
    ///
    /// Captured: the round counter, population configuration, seed,
    /// channel (kind, sampling mode, exact noise rows), the current
    /// correct opinion, the fault cursor and in-flight fault effects
    /// (active ramp, sleep horizons), the recorded series/trace (metrics
    /// only — never wall-clock timings), and the whole protocol state.
    /// Not captured: the thread count (pure perf knob), any custom
    /// observer (code, not data), and pending fault *events* (also code —
    /// see [`World::reattach_fault_plan`]).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_str(if self.topology.is_complete() {
            SNAP_MAGIC
        } else {
            SNAP_MAGIC_V2
        });
        w.put_str(<P::State as SnapshotState>::SNAP_TAG);
        w.put_usize(self.config.n());
        w.put_usize(self.config.s0());
        w.put_usize(self.config.s1());
        w.put_usize(self.config.h());
        w.put_u64(self.seed);
        w.put_u64(self.round);
        w.put_opinion(self.correct_opinion);
        w.put_u8(match self.channel.kind() {
            ChannelKind::Exact => 0,
            ChannelKind::Aggregated => 1,
        });
        w.put_u8(match self.channel.sampling_mode() {
            SamplingMode::WithReplacement => 0,
            SamplingMode::WithoutReplacement => 1,
        });
        // The v2 topology section. A complete topology writes nothing —
        // that omission is what keeps complete-graph snapshots v1.
        match self.topology.spec() {
            TopologySpec::Complete => {}
            TopologySpec::Ring { k } => {
                w.put_u8(1);
                w.put_usize(k);
            }
            TopologySpec::RandomRegular { d } => {
                w.put_u8(2);
                w.put_usize(d);
            }
            TopologySpec::PowerLaw { alpha } => {
                w.put_u8(3);
                w.put_f64(alpha);
            }
        }
        let rows = self.channel.noise_rows();
        w.put_usize(rows.len());
        for row in rows {
            for &p in row {
                w.put_f64(p);
            }
        }
        w.put_usize(self.next_fault);
        match self.ramp {
            None => w.put_bool(false),
            Some(ramp) => {
                w.put_bool(true);
                w.put_f64(ramp.from);
                w.put_f64(ramp.to);
                w.put_u64(ramp.over);
                w.put_u64(ramp.start);
            }
        }
        w.put_usize(self.asleep_until.len());
        for &until in &self.asleep_until {
            w.put_u64(until);
        }
        match &self.series {
            None => w.put_bool(false),
            Some(series) => {
                w.put_bool(true);
                let ones = series.counts(Opinion::One);
                w.put_usize(ones.len());
                for count in ones {
                    w.put_usize(count);
                }
            }
        }
        match &self.trace {
            None => w.put_bool(false),
            Some(trace) => {
                w.put_bool(true);
                w.put_usize(trace.len());
                for m in trace.rounds() {
                    crate::snapshot::encode_round_metrics(m, &mut w);
                }
            }
        }
        self.state.encode_state(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a world from an `np-snap/v1` or `np-snap/v2` buffer
    /// produced by [`World::snapshot`], ready to continue from the
    /// recorded round. A v2 buffer carries a topology spec; its neighbor
    /// lists are regenerated from the seed.
    ///
    /// The restored world uses [`runner::suggested_threads`]`()` (override
    /// with [`World::set_threads`] — the trajectory never depends on it)
    /// and has no observer attached. If the original run had a fault plan
    /// with pending events, re-attach it with
    /// [`World::reattach_fault_plan`] before stepping.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadSnapshot`] on truncated or malformed
    /// bytes, a magic/state-tag mismatch, or contents inconsistent with
    /// `protocol` (alphabet size, agent count).
    pub fn restore(protocol: &P, bytes: &[u8]) -> Result<Self> {
        let bad = |detail: String| EngineError::BadSnapshot { detail };
        let mut r = SnapReader::new(bytes);
        let magic = r.take_str()?;
        let has_topology_section = if magic == SNAP_MAGIC {
            false
        } else if magic == SNAP_MAGIC_V2 {
            true
        } else {
            return Err(bad(format!(
                "expected magic `{SNAP_MAGIC}` or `{SNAP_MAGIC_V2}`, found `{magic}`"
            )));
        };
        let tag = r.take_str()?;
        let want = <P::State as SnapshotState>::SNAP_TAG;
        if tag != want {
            return Err(bad(format!(
                "state tag mismatch: snapshot holds `{tag}`, protocol expects `{want}`"
            )));
        }
        let n = r.take_usize()?;
        let s0 = r.take_usize()?;
        let s1 = r.take_usize()?;
        let h = r.take_usize()?;
        let config = PopulationConfig::new(n, s0, s1, h)?;
        let seed = r.take_u64()?;
        let round = r.take_u64()?;
        let correct_opinion = r.take_opinion()?;
        let kind = match r.take_u8()? {
            0 => ChannelKind::Exact,
            1 => ChannelKind::Aggregated,
            x => return Err(bad(format!("invalid channel-kind byte {x}"))),
        };
        let mode = match r.take_u8()? {
            0 => SamplingMode::WithReplacement,
            1 => SamplingMode::WithoutReplacement,
            x => return Err(bad(format!("invalid sampling-mode byte {x}"))),
        };
        let topo_spec = if has_topology_section {
            match r.take_u8()? {
                1 => TopologySpec::Ring { k: r.take_usize()? },
                2 => TopologySpec::RandomRegular { d: r.take_usize()? },
                3 => TopologySpec::PowerLaw {
                    alpha: r.take_f64()?,
                },
                x => return Err(bad(format!("invalid topology tag {x}"))),
            }
        } else {
            TopologySpec::Complete
        };
        // Neighbor lists are a pure function of (spec, n, seed), so the
        // snapshot carries only the spec and we regenerate the graph here.
        let topology = Topology::build(topo_spec, n, seed)
            .map_err(|e| bad(format!("snapshot topology rejected: {e}")))?;
        if mode == SamplingMode::WithoutReplacement
            && !topology.is_complete()
            && h > topology.min_degree()
        {
            return Err(bad(format!(
                "snapshot samples {h} distinct neighbors but the topology's minimum degree is {}",
                topology.min_degree()
            )));
        }
        let d = r.take_usize()?;
        if d != protocol.alphabet_size() {
            return Err(bad(format!(
                "snapshot alphabet has {d} symbols, protocol uses {}",
                protocol.alphabet_size()
            )));
        }
        let mut rows = Vec::with_capacity(d);
        for _ in 0..d {
            let mut row = Vec::with_capacity(d);
            for _ in 0..d {
                row.push(r.take_f64()?);
            }
            rows.push(row);
        }
        let noise = NoiseMatrix::from_rows(rows)
            .map_err(|e| bad(format!("snapshot noise rows rejected: {e}")))?;
        let channel = Channel::with_sampling(&noise, kind, mode);
        let next_fault = r.take_usize()?;
        let ramp = if r.take_bool()? {
            Some(ActiveRamp {
                from: r.take_f64()?,
                to: r.take_f64()?,
                over: r.take_u64()?,
                start: r.take_u64()?,
            })
        } else {
            None
        };
        let asleep_len = r.take_usize()?;
        if asleep_len != 0 && asleep_len != n {
            return Err(bad(format!(
                "sleep horizons cover {asleep_len} agents, population has {n}"
            )));
        }
        let mut asleep_until = Vec::with_capacity(asleep_len);
        for _ in 0..asleep_len {
            asleep_until.push(r.take_u64()?);
        }
        let series = if r.take_bool()? {
            let len = r.take_usize()?;
            let mut series = OpinionSeries::new(config.n());
            for _ in 0..len {
                let ones = r.take_usize()?;
                if ones > n {
                    return Err(bad(format!("series count {ones} exceeds population {n}")));
                }
                series.push(ones);
            }
            Some(series)
        } else {
            None
        };
        let trace = if r.take_bool()? {
            let len = r.take_usize()?;
            let mut trace = TraceRecorder::new();
            for _ in 0..len {
                let m = crate::snapshot::decode_round_metrics(&mut r)?;
                trace.on_round(&m, &StageTimings::default());
            }
            Some(trace)
        } else {
            None
        };
        let state = <P::State as SnapshotState>::decode_state(&mut r)?;
        if state.len() != n {
            return Err(bad(format!(
                "state holds {} agents, configuration says {n}",
                state.len()
            )));
        }
        r.finish()?;
        Ok(World {
            config,
            channel,
            topology,
            state,
            packed: PackedDisplays::new(n, d),
            displays: vec![0; n],
            observations: vec![0; n * d],
            seed,
            threads: runner::suggested_threads(),
            round,
            series,
            trace,
            observer: None,
            correct_opinion,
            faults: Vec::new(),
            next_fault,
            ramp,
            asleep_until,
        })
    }
}

/// Scalar conveniences, available when the protocol runs through the
/// blanket adapter (its state is a [`crate::protocol::ScalarState`]).
impl<P: Protocol> World<P> {
    /// Read access to an agent's state (experiments inspect weak opinions).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn agent(&self, id: usize) -> &P::Agent {
        &self.state.agents()[id]
    }

    /// Iterates over all agent states in id order.
    pub fn iter_agents(&self) -> impl Iterator<Item = &P::Agent> {
        self.state.agents().iter()
    }

    /// Applies an arbitrary mutation to every agent's state *before* the
    /// run starts — the self-stabilization adversary of Section 1.3. The
    /// closure receives the agent id, a mutable reference to its state, and
    /// the agent's [`StreamStage::Corrupt`] stream for the current round.
    ///
    /// Roles are not passed: the model forbids the adversary from changing
    /// them (it may only corrupt internal state).
    pub fn corrupt_agents<F>(&mut self, mut corrupt: F)
    where
        F: FnMut(usize, &mut P::Agent, &mut StreamRng),
    {
        let streams = RoundStreams::new(self.seed, self.round);
        for (id, agent) in self.state.agents_mut().iter_mut().enumerate() {
            let mut rng = streams.rng(id, StreamStage::Corrupt);
            corrupt(id, agent, &mut rng);
        }
    }
}

impl<P: ColumnarProtocol> std::fmt::Debug for World<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("config", &self.config)
            .field("round", &self.round)
            .field("threads", &self.threads)
            .field("correct_count", &self.correct_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Role;
    use crate::protocol::AgentState;
    use rand::Rng;

    /// Copy-the-majority test protocol; sources stubbornly display and hold
    /// their preference.
    struct Majority;
    struct MajorityAgent {
        role: Role,
        opinion: Opinion,
    }

    impl Protocol for Majority {
        type Agent = MajorityAgent;
        fn alphabet_size(&self) -> usize {
            2
        }
        fn init_agent(&self, role: Role, _rng: &mut StreamRng) -> MajorityAgent {
            let opinion = role.preference().unwrap_or(Opinion::Zero);
            MajorityAgent { role, opinion }
        }
    }

    impl AgentState for MajorityAgent {
        fn display(&self, _rng: &mut StreamRng) -> usize {
            self.opinion.as_index()
        }
        fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
            if let Role::Source(p) = self.role {
                self.opinion = p;
                return;
            }
            self.opinion = match observed[1].cmp(&observed[0]) {
                std::cmp::Ordering::Greater => Opinion::One,
                std::cmp::Ordering::Less => Opinion::Zero,
                std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
            };
        }
        fn opinion(&self) -> Opinion {
            self.opinion
        }
        fn flip_source_preference(&mut self) -> bool {
            if let Role::Source(p) = self.role {
                self.role = Role::Source(!p);
                true
            } else {
                false
            }
        }
    }

    /// Plain majority dynamics can only amplify an existing display
    /// majority (that inability to spread from few sources is the paper's
    /// whole motivation), so the toy convergence tests seed a *majority* of
    /// stubborn sources.
    fn world(seed: u64) -> World<Majority> {
        let config = PopulationConfig::new(32, 0, 20, 32).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.05).unwrap();
        World::new(&Majority, config, &noise, ChannelKind::Aggregated, seed).unwrap()
    }

    /// A fully-noisy world (δ = ½): observations are fair coins, so
    /// non-source opinions are re-randomized every round.
    fn noisy_world(seed: u64) -> World<Majority> {
        let config = PopulationConfig::new(32, 0, 4, 32).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.5).unwrap();
        World::new(&Majority, config, &noise, ChannelKind::Aggregated, seed).unwrap()
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let config = PopulationConfig::new(8, 0, 1, 1).unwrap();
        let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
        let err = World::new(&Majority, config, &noise, ChannelKind::Exact, 0).unwrap_err();
        assert!(matches!(
            err,
            EngineError::AlphabetMismatch {
                protocol: 2,
                noise: 4
            }
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = world(7);
        let mut b = world(7);
        a.run(20);
        b.run(20);
        assert_eq!(a.correct_count(), b.correct_count());
        assert_eq!(a.opinions(), b.opinions());
    }

    #[test]
    fn trajectory_is_thread_count_invariant() {
        let mut reference = world(13);
        reference.set_threads(1);
        reference.record_series();
        reference.run(15);
        for threads in [2, 3, 7, 32] {
            let mut w = world(13);
            w.set_threads(threads);
            w.record_series();
            w.run(15);
            assert_eq!(w.opinions(), reference.opinions(), "threads = {threads}");
            assert_eq!(
                w.series().unwrap().counts(Opinion::One),
                reference.series().unwrap().counts(Opinion::One),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = noisy_world(1);
        let mut b = noisy_world(2);
        a.run(1);
        b.run(1);
        // Under pure noise each of the 28 non-source opinions is a fair
        // coin, so identical vectors across seeds are (2^-28)-unlikely.
        assert_ne!(a.opinions(), b.opinions());
    }

    #[test]
    fn majority_converges_with_big_h_and_low_noise() {
        let mut w = world(42);
        let outcome = w.run_until_consensus(500);
        assert!(outcome.converged(), "outcome: {outcome:?}");
        assert!(w.is_consensus());
        assert_eq!(w.correct_count(), 32);
    }

    #[test]
    fn series_records_when_enabled() {
        let mut w = world(3);
        assert!(w.series().is_none());
        w.record_series();
        w.run(5);
        let s = w.series().unwrap();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn run_until_consensus_times_out_on_tiny_budget() {
        let mut w = world(5);
        let outcome = w.run_until_consensus(1);
        // One round of majority under noise will almost surely not convert
        // all 28 non-sources; accept either but check invariants.
        match outcome {
            RunOutcome::Converged { rounds } => assert_eq!(rounds, 1),
            RunOutcome::TimedOut {
                budget,
                correct_at_end,
            } => {
                assert_eq!(budget, 1);
                assert!(correct_at_end <= 32);
            }
        }
        assert_eq!(w.round(), 1);
    }

    #[test]
    fn stable_consensus_requires_window() {
        let mut w = world(8);
        let outcome = w.run_until_stable_consensus(1000, 10);
        assert!(outcome.converged());
        // After the stable window, the system is (still) in consensus.
        assert!(w.is_consensus());
    }

    #[test]
    fn stable_consensus_window_zero_does_not_underflow() {
        // Regression: window = 0 underflowed `rounds - (window - 1)`.
        let mut w = world(8);
        let outcome = w.run_until_stable_consensus(1000, 0);
        assert!(outcome.converged(), "outcome: {outcome:?}");
        let mut v = world(8);
        let with_one = v.run_until_stable_consensus(1000, 1);
        assert_eq!(outcome, with_one, "window 0 behaves as window 1");
    }

    #[test]
    fn already_converged_world_reports_converged_at_zero_budget() {
        // Regression: both runners stepped before checking consensus, so
        // an already-converged world timed out at budget = 0.
        let mut w = world(8);
        assert!(w.run_until_consensus(1000).converged());
        let round = w.round();
        assert_eq!(
            w.run_until_consensus(0),
            RunOutcome::Converged { rounds: 0 }
        );
        assert_eq!(
            w.run_until_stable_consensus(0, 5),
            RunOutcome::Converged { rounds: 0 }
        );
        assert_eq!(w.round(), round, "no steps were taken");
    }

    #[test]
    fn trace_records_rounds_and_margin() {
        let mut w = world(6);
        assert!(w.trace().is_none());
        w.record_trace();
        w.run(4);
        let trace = w.trace().unwrap();
        assert_eq!(trace.len(), 4);
        for (i, m) in trace.rounds().iter().enumerate() {
            assert_eq!(m.round, i as u64 + 1);
            assert_eq!(m.n, 32);
            // Majority has no phase structure: everyone in default stage 0.
            assert_eq!(m.stages, vec![(0, 32)]);
            assert_eq!(m.weak_formed, 0);
            let occupancy: usize = m.stages.iter().map(|&(_, c)| c).sum();
            assert_eq!(occupancy, 32);
        }
        let last = trace.last().unwrap();
        assert_eq!(last.correct, w.correct_count());
        assert_eq!(last.margin(), w.correct_count() as f64 - 16.0);
        let taken = w.take_trace().unwrap();
        assert_eq!(taken.len(), 4);
        assert!(w.trace().is_none());
    }

    #[test]
    fn trace_metrics_are_thread_count_invariant() {
        let run = |threads: usize| {
            let mut w = world(17);
            w.set_threads(threads);
            w.record_trace();
            w.run(10);
            w.take_trace().unwrap()
        };
        let reference = run(1);
        for threads in [2, 7] {
            let got = run(threads);
            assert_eq!(
                reference.rounds(),
                got.rounds(),
                "trace differs at {threads} threads"
            );
        }
    }

    #[test]
    fn custom_observer_receives_every_round() {
        use std::sync::{Arc, Mutex};
        struct CountRounds(Arc<Mutex<Vec<u64>>>);
        impl crate::metrics::RunObserver for CountRounds {
            fn on_round(
                &mut self,
                metrics: &RoundMetrics,
                _timings: &crate::metrics::StageTimings,
            ) {
                self.0.lock().unwrap().push(metrics.round);
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut w = world(4);
        w.set_observer(Box::new(CountRounds(Arc::clone(&seen))));
        w.run(3);
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
        assert!(w.take_observer().is_some());
        w.run(1);
        assert_eq!(
            seen.lock().unwrap().len(),
            3,
            "detached observer no longer fires"
        );
    }

    #[test]
    fn corrupt_agents_flips_states() {
        let mut w = world(9);
        w.corrupt_agents(|_, agent, _| agent.opinion = Opinion::Zero);
        assert_eq!(w.correct_count(), 0);
        // Sources re-assert their preference on the next update.
        w.step();
        assert!(w.correct_count() >= 4);
    }

    #[test]
    fn corrupt_agents_is_deterministic_per_agent() {
        // The corruption rng is a per-agent stream, so the corrupted state
        // does not depend on iteration side effects or thread settings.
        let snapshot = |w: &mut World<Majority>| {
            w.corrupt_agents(|_, agent, rng| {
                agent.opinion = Opinion::from_bool(rng.gen());
            });
            w.opinions()
        };
        let a = snapshot(&mut world(21));
        let b = snapshot(&mut world(21));
        assert_eq!(a, b);
    }

    #[test]
    fn threads_accessor_round_trips() {
        let mut w = world(2);
        w.set_threads(5);
        assert_eq!(w.threads(), 5);
        w.set_threads(0);
        assert_eq!(w.threads(), 1, "clamped to at least one worker");
        assert_eq!(w.seed(), 2);
    }

    /// A protocol that displays a symbol outside its declared alphabet —
    /// the class of bug `invariants::check_displays_in_alphabet` exists to
    /// catch at the point of violation rather than as a downstream index
    /// panic. Only live when the checks are compiled in (debug builds and
    /// `--features strict-invariants`). The panic is raised inside a chunk
    /// worker and must survive the thread boundary with its message intact.
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    #[test]
    #[should_panic(expected = "outside the 2-symbol alphabet")]
    fn rogue_display_is_caught_by_invariants() {
        struct Rogue;
        struct RogueAgent;
        impl Protocol for Rogue {
            type Agent = RogueAgent;
            fn alphabet_size(&self) -> usize {
                2
            }
            fn init_agent(&self, _role: Role, _rng: &mut StreamRng) -> RogueAgent {
                RogueAgent
            }
        }
        impl AgentState for RogueAgent {
            fn display(&self, _rng: &mut StreamRng) -> usize {
                2
            }
            fn update(&mut self, _observed: &[u64], _rng: &mut StreamRng) {}
            fn opinion(&self) -> Opinion {
                Opinion::Zero
            }
        }
        let config = PopulationConfig::new(4, 0, 1, 4).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut w = World::new(&Rogue, config, &noise, ChannelKind::Aggregated, 0).unwrap();
        w.set_threads(2);
        w.step();
    }

    #[test]
    fn debug_output_mentions_round() {
        let w = world(1);
        assert!(format!("{w:?}").contains("round"));
    }

    // ---- mid-run fault injection -------------------------------------

    use crate::faults::{recovery_times, FaultEvent, FaultPlan};
    use crate::protocol::ScalarState;
    use std::sync::Arc;

    type MajState = ScalarState<MajorityAgent>;

    /// A corruption that forces the wrong opinion onto the selected agent.
    fn zero_out(frac: f64) -> FaultEvent<MajState> {
        FaultEvent::Corrupt {
            frac,
            label: "zero-out".to_string(),
            fault: Arc::new(|state: &mut MajState, id: usize, _rng: &mut StreamRng| {
                state.agents_mut()[id].opinion = Opinion::Zero;
            }),
        }
    }

    #[test]
    fn fault_plan_rejects_rounds_already_executed() {
        let mut w = world(11);
        w.run(3);
        let err = w
            .set_fault_plan(FaultPlan::new().at(3, FaultEvent::FlipSources))
            .unwrap_err();
        assert!(matches!(err, EngineError::BadFaultPlan { .. }), "{err}");
        assert!(!w.has_fault_plan());
        assert!(w
            .set_fault_plan(FaultPlan::new().at(4, FaultEvent::FlipSources))
            .is_ok());
        assert!(w.has_fault_plan());
    }

    #[test]
    fn corrupt_event_fires_at_its_round_and_marks_the_trace() {
        let mut w = world(12);
        w.record_trace();
        w.set_fault_plan(FaultPlan::new().at(5, zero_out(1.0)))
            .unwrap();
        w.run(6);
        let trace = w.take_trace().unwrap();
        let rounds = trace.rounds();
        for m in &rounds[..4] {
            assert!(m.faults.is_empty(), "round {} marked early", m.round);
        }
        // frac = 1.0 selects every agent (the selection coin is < 1.0
        // with probability one), so the label counts all 32.
        assert_eq!(rounds[4].faults, vec!["zero-out:32".to_string()]);
        // All 12 sources re-assert their preference within the faulted
        // round's own update, but the 20 coerced non-sources can only
        // have recovered partially.
        assert!(
            rounds[4].correct < rounds[3].correct,
            "corruption did not dent consensus: {} -> {}",
            rounds[3].correct,
            rounds[4].correct
        );
        assert!(rounds[5].faults.is_empty());
    }

    #[test]
    fn flip_sources_flips_the_trend_and_reconverges() {
        let mut w = world(13);
        assert!(w.run_until_consensus(200).converged());
        assert_eq!(w.correct_opinion(), Opinion::One);
        let flip_round = w.round() + 1;
        w.set_fault_plan(FaultPlan::new().at(flip_round, FaultEvent::FlipSources))
            .unwrap();
        w.step();
        assert_eq!(w.correct_opinion(), Opinion::Zero, "trend flipped");
        assert!(
            !w.is_consensus(),
            "old consensus must now count as incorrect"
        );
        let outcome = w.run_until_consensus(500);
        assert!(outcome.converged(), "never re-converged: {outcome:?}");
        assert_eq!(w.correct_count(), 32);
        assert!(w.iter_agents().all(|a| a.opinion() == Opinion::Zero));
    }

    #[test]
    fn sleeping_agents_freeze_while_the_world_churns() {
        // δ = ½ re-randomizes every awake non-source each round, so a
        // frozen opinion vector proves the updates really were skipped.
        let mut w = noisy_world(14);
        w.run(2);
        w.set_fault_plan(FaultPlan::new().at(
            3,
            FaultEvent::Sleep {
                frac: 1.0,
                rounds: 3,
            },
        ))
        .unwrap();
        let before = w.opinions();
        w.run(3);
        assert_eq!(w.opinions(), before, "asleep agents must not update");
        w.step();
        assert_ne!(w.opinions(), before, "agents woke up frozen");
    }

    #[test]
    fn set_noise_rebuilds_the_channel_mid_run() {
        let mut w = world(15);
        assert!(w.run_until_consensus(200).converged());
        let round = w.round();
        w.set_fault_plan(FaultPlan::new().at(
            round + 1,
            FaultEvent::SetNoise {
                noise: NoiseMatrix::uniform(2, 0.5).unwrap(),
            },
        ))
        .unwrap();
        w.record_trace();
        w.run(4);
        let trace = w.take_trace().unwrap();
        assert_eq!(trace.rounds()[0].faults, vec!["set-noise:0.5".to_string()]);
        // Under fair-coin observations the 20 non-sources cannot all stay
        // correct for 4 consecutive rounds (probability 2^-80).
        assert!(
            trace.rounds().iter().any(|m| m.correct < 32),
            "δ = ½ noise left consensus untouched"
        );
    }

    #[test]
    fn faulted_trajectory_is_thread_count_invariant() {
        let plan = || {
            FaultPlan::new()
                .at(2, zero_out(0.4))
                .at(
                    4,
                    FaultEvent::Sleep {
                        frac: 0.3,
                        rounds: 2,
                    },
                )
                .at(
                    4,
                    FaultEvent::RampNoise {
                        from: 0.05,
                        to: 0.3,
                        over: 3,
                    },
                )
                .at(9, FaultEvent::FlipSources)
        };
        let run = |threads: usize| {
            let mut w = world(16);
            w.set_threads(threads);
            w.record_trace();
            w.set_fault_plan(plan()).unwrap();
            w.run(12);
            (w.opinions(), w.take_trace().unwrap())
        };
        let (ref_opinions, ref_trace) = run(1);
        assert_eq!(
            ref_trace.rounds()[3].faults,
            vec![
                "sleep:10/2r".to_string(),
                "ramp-noise:0.05->0.3/3".to_string()
            ],
            "same-round events keep plan order"
        );
        for threads in [2, 7] {
            let (opinions, trace) = run(threads);
            assert_eq!(opinions, ref_opinions, "threads = {threads}");
            assert_eq!(
                trace.rounds(),
                ref_trace.rounds(),
                "faulted trace differs at {threads} threads"
            );
        }
    }

    // ---- snapshot / restore ------------------------------------------

    use crate::snapshot::{SnapshotAgent, SNAP_MAGIC, SNAP_MAGIC_V2};

    impl SnapshotAgent for MajorityAgent {
        const SNAP_TAG: &'static str = "test-majority/v1";
        fn encode_agent(&self, w: &mut SnapWriter) {
            w.put_role(self.role);
            w.put_opinion(self.opinion);
        }
        fn decode_agent(r: &mut SnapReader<'_>) -> Result<Self> {
            Ok(MajorityAgent {
                role: r.take_role()?,
                opinion: r.take_opinion()?,
            })
        }
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        // Straight run 0..15 vs snapshot at 5 + restore + run 5..15, at a
        // different thread count: same opinions, series, and trace.
        let mut reference = noisy_world(23);
        reference.set_threads(1);
        reference.record_series();
        reference.record_trace();
        reference.run(5);
        let bytes = reference.snapshot();
        reference.run(10);

        let mut restored: World<Majority> = World::restore(&Majority, &bytes).unwrap();
        assert_eq!(restored.round(), 5);
        assert_eq!(restored.seed(), 23);
        restored.set_threads(7);
        restored.run(10);

        assert_eq!(restored.opinions(), reference.opinions());
        assert_eq!(
            restored.series().unwrap().counts(Opinion::One),
            reference.series().unwrap().counts(Opinion::One)
        );
        assert_eq!(
            restored.trace().unwrap().rounds(),
            reference.trace().unwrap().rounds()
        );
    }

    #[test]
    fn snapshot_round_trips_without_optional_recorders() {
        let mut w = noisy_world(3);
        w.run(2);
        let bytes = w.snapshot();
        let restored: World<Majority> = World::restore(&Majority, &bytes).unwrap();
        assert!(restored.series().is_none());
        assert!(restored.trace().is_none());
        assert_eq!(restored.opinions(), w.opinions());
        // Re-encoding the restored world reproduces the bytes exactly.
        assert_eq!(restored.snapshot(), bytes);
    }

    #[test]
    fn faulted_run_restores_mid_plan_with_reattachment() {
        let plan = || {
            FaultPlan::new()
                .at(2, zero_out(0.5))
                .at(
                    4,
                    FaultEvent::RampNoise {
                        from: 0.05,
                        to: 0.4,
                        over: 6,
                    },
                )
                .at(
                    5,
                    FaultEvent::Sleep {
                        frac: 0.3,
                        rounds: 4,
                    },
                )
                .at(9, FaultEvent::FlipSources)
        };
        let mut reference = world(31);
        reference.record_trace();
        reference.set_fault_plan(plan()).unwrap();
        // Snapshot at round 6: corrupt + ramp + sleep have fired (cursor
        // 3), the ramp is still in flight, sleep horizons are live, and
        // the flip is pending.
        reference.run(6);
        let bytes = reference.snapshot();
        reference.run(6);

        let mut restored: World<Majority> = World::restore(&Majority, &bytes).unwrap();
        assert_eq!(restored.fault_cursor(), 3);
        // A plain set_fault_plan must reject the already-fired rounds…
        let err = restored.set_fault_plan(plan()).unwrap_err();
        assert!(matches!(err, EngineError::BadFaultPlan { .. }), "{err}");
        // …but reattachment validates only the pending suffix.
        restored.reattach_fault_plan(plan()).unwrap();
        restored.set_threads(2);
        restored.run(6);

        assert_eq!(restored.opinions(), reference.opinions());
        assert_eq!(restored.correct_opinion(), reference.correct_opinion());
        assert_eq!(
            restored.trace().unwrap().rounds(),
            reference.trace().unwrap().rounds()
        );
    }

    #[test]
    fn reattach_rejects_plans_shorter_than_the_cursor() {
        let mut w = world(32);
        w.set_fault_plan(FaultPlan::new().at(1, FaultEvent::FlipSources).at(
            2,
            FaultEvent::Sleep {
                frac: 0.1,
                rounds: 1,
            },
        ))
        .unwrap();
        w.run(3);
        let bytes = w.snapshot();
        let mut restored: World<Majority> = World::restore(&Majority, &bytes).unwrap();
        assert_eq!(restored.fault_cursor(), 2);
        let err = restored
            .reattach_fault_plan(FaultPlan::new().at(1, FaultEvent::FlipSources))
            .unwrap_err();
        assert!(matches!(err, EngineError::BadFaultPlan { .. }), "{err}");
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let mut w = world(33);
        w.run(1);
        let bytes = w.snapshot();

        // Truncation anywhere fails loudly.
        let err = World::<Majority>::restore(&Majority, &bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, EngineError::BadSnapshot { .. }), "{err}");

        // Trailing garbage is rejected by the full-consumption check.
        let mut padded = bytes.clone();
        padded.push(0);
        let err = World::<Majority>::restore(&Majority, &padded).unwrap_err();
        assert!(matches!(err, EngineError::BadSnapshot { .. }), "{err}");

        // Wrong magic.
        let mut wrong = SnapWriter::new();
        wrong.put_str("np-snap/v0");
        let err = World::<Majority>::restore(&Majority, &wrong.into_bytes()).unwrap_err();
        assert!(err.to_string().contains(SNAP_MAGIC), "{err}");

        // Wrong state tag.
        let mut wrong = SnapWriter::new();
        wrong.put_str(SNAP_MAGIC);
        wrong.put_str("other-protocol/v1");
        let err = World::<Majority>::restore(&Majority, &wrong.into_bytes()).unwrap_err();
        assert!(err.to_string().contains("test-majority/v1"), "{err}");
    }

    // ---- graph-restricted topologies ---------------------------------

    /// A ring world under real noise; k = 4 gives degree 8 ≪ n.
    fn ring_world(seed: u64, kind: ChannelKind) -> World<Majority> {
        let config = PopulationConfig::new(32, 0, 20, 8).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut w = World::new(&Majority, config, &noise, kind, seed).unwrap();
        w.set_topology(TopologySpec::Ring { k: 4 }).unwrap();
        w
    }

    #[test]
    fn complete_topology_is_a_noop_seam() {
        // Explicitly setting the complete topology must leave the
        // trajectory AND the snapshot bytes identical to never touching
        // the topology API at all.
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let config = || PopulationConfig::new(32, 0, 20, 32).unwrap();
            let noise = NoiseMatrix::uniform(2, 0.05).unwrap();
            let mut plain = World::new(&Majority, config(), &noise, kind, 7).unwrap();
            let mut seamed = World::new(&Majority, config(), &noise, kind, 7).unwrap();
            seamed.set_topology(TopologySpec::Complete).unwrap();
            plain.run(10);
            seamed.run(10);
            assert_eq!(plain.opinions(), seamed.opinions(), "{kind:?}");
            assert_eq!(plain.snapshot(), seamed.snapshot(), "{kind:?}");
        }
    }

    #[test]
    fn topology_must_be_set_before_stepping() {
        let mut w = world(5);
        w.run(1);
        let err = w.set_topology(TopologySpec::Ring { k: 2 }).unwrap_err();
        assert!(matches!(err, EngineError::BadTopology { .. }), "{err}");
        assert!(err.to_string().contains("before the first round"), "{err}");
    }

    #[test]
    fn without_replacement_rejects_oversampling_the_neighborhood() {
        // h = 8 but ring k = 2 gives degree 4: too few distinct neighbors.
        let config = PopulationConfig::new(32, 0, 20, 8).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let channel = Channel::with_sampling(
            &noise,
            ChannelKind::Aggregated,
            SamplingMode::WithoutReplacement,
        );
        let mut w: World<Majority> = World::with_channel(&Majority, config, channel, 3).unwrap();
        let err = w.set_topology(TopologySpec::Ring { k: 2 }).unwrap_err();
        assert!(matches!(err, EngineError::BadTopology { .. }), "{err}");
        assert!(err.to_string().contains("minimum degree"), "{err}");
        // Degree 16 ≥ h = 8 is fine.
        w.set_topology(TopologySpec::Ring { k: 8 }).unwrap();
    }

    #[test]
    fn ring_changes_the_trajectory() {
        let mut complete = {
            let config = PopulationConfig::new(32, 0, 20, 8).unwrap();
            let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
            World::<Majority>::new(&Majority, config, &noise, ChannelKind::Aggregated, 9).unwrap()
        };
        let mut ring = ring_world(9, ChannelKind::Aggregated);
        complete.run(5);
        ring.run(5);
        assert_ne!(
            complete.opinions(),
            ring.opinions(),
            "a degree-8 ring should not reproduce the complete graph"
        );
    }

    #[test]
    fn ring_trajectory_is_thread_count_invariant() {
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let mut reference = ring_world(13, kind);
            reference.set_threads(1);
            reference.record_series();
            reference.run(12);
            for threads in [2, 7] {
                let mut w = ring_world(13, kind);
                w.set_threads(threads);
                w.record_series();
                w.run(12);
                assert_eq!(
                    w.opinions(),
                    reference.opinions(),
                    "{kind:?} threads = {threads}"
                );
                assert_eq!(
                    w.series().unwrap().counts(Opinion::One),
                    reference.series().unwrap().counts(Opinion::One),
                    "{kind:?} threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn ring_snapshot_round_trips_as_v2() {
        let mut reference = ring_world(23, ChannelKind::Aggregated);
        reference.set_threads(1);
        reference.run(4);
        let bytes = reference.snapshot();
        // The v2 magic leads the buffer (u64 length prefix, then UTF-8).
        assert_eq!(&bytes[8..18], SNAP_MAGIC_V2.as_bytes());
        reference.run(6);

        let mut restored: World<Majority> = World::restore(&Majority, &bytes).unwrap();
        assert_eq!(restored.topology().spec(), TopologySpec::Ring { k: 4 });
        restored.set_threads(7);
        restored.run(6);
        assert_eq!(restored.opinions(), reference.opinions());

        // Re-encoding a freshly restored world reproduces the bytes.
        let again: World<Majority> = World::restore(&Majority, &bytes).unwrap();
        assert_eq!(again.snapshot(), bytes);
    }

    #[test]
    fn recovery_times_flow_from_a_faulted_trace() {
        let mut w = world(17);
        w.record_trace();
        w.set_fault_plan(FaultPlan::new().at(4, zero_out(1.0)))
            .unwrap();
        assert!(w.run_until_stable_consensus(300, 5).converged());
        let trace = w.take_trace().unwrap();
        let recoveries = recovery_times(trace.rounds());
        assert_eq!(recoveries.len(), 1);
        assert_eq!(recoveries[0].round, 4);
        assert_eq!(recoveries[0].label, "zero-out:32");
        let rounds = recoveries[0]
            .recovery_rounds()
            .expect("the run re-converged");
        assert!(rounds > 0, "full corruption must break consensus");
    }
}
