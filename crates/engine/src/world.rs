//! The round loop: wires a protocol, a population, and a noisy channel
//! together and runs the system to consensus.

use np_linalg::noise::NoiseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::channel::{Channel, ChannelKind};
use crate::metrics::{OpinionSeries, RunOutcome};
use crate::opinion::Opinion;
use crate::population::PopulationConfig;
use crate::protocol::{AgentState, Protocol};
use crate::{EngineError, Result};

/// A running instance of the noisy PULL model: one population, one
/// protocol, one noise matrix, one RNG.
///
/// Construction is deterministic given the seed: two worlds built with the
/// same arguments produce identical executions.
///
/// # Example
///
/// See the crate-level example in [`crate`].
pub struct World<P: Protocol> {
    config: PopulationConfig,
    channel: Channel,
    agents: Vec<P::Agent>,
    displays: Vec<usize>,
    observations: Vec<u64>,
    rng: StdRng,
    round: u64,
    series: Option<OpinionSeries>,
}

impl<P: Protocol> World<P> {
    /// Builds a world: initializes one agent per role in the canonical
    /// layout of [`PopulationConfig::role_of`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AlphabetMismatch`] if the protocol's alphabet
    /// size differs from the noise matrix's.
    pub fn new(
        protocol: &P,
        config: PopulationConfig,
        noise: &NoiseMatrix,
        kind: ChannelKind,
        seed: u64,
    ) -> Result<Self> {
        if protocol.alphabet_size() != noise.dim() {
            return Err(EngineError::AlphabetMismatch {
                protocol: protocol.alphabet_size(),
                noise: noise.dim(),
            });
        }
        World::with_channel(protocol, config, Channel::new(noise, kind), seed)
    }

    /// Builds a world around a pre-configured [`Channel`] (e.g. one using
    /// [`crate::channel::SamplingMode::WithoutReplacement`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AlphabetMismatch`] if the protocol's alphabet
    /// size differs from the channel's.
    pub fn with_channel(
        protocol: &P,
        config: PopulationConfig,
        channel: Channel,
        seed: u64,
    ) -> Result<Self> {
        if protocol.alphabet_size() != channel.alphabet_size() {
            return Err(EngineError::AlphabetMismatch {
                protocol: protocol.alphabet_size(),
                noise: channel.alphabet_size(),
            });
        }
        crate::invariants::check_population(&config);
        let mut rng = StdRng::seed_from_u64(seed);
        let agents: Vec<P::Agent> = config
            .iter_roles()
            .map(|role| protocol.init_agent(role, &mut rng))
            .collect();
        let n = config.n();
        let d = channel.alphabet_size();
        Ok(World {
            config,
            channel,
            agents,
            displays: vec![0; n],
            observations: vec![0; n * d],
            rng,
            round: 0,
            series: None,
        })
    }

    /// The population configuration.
    pub fn config(&self) -> &PopulationConfig {
        self.config_ref()
    }

    fn config_ref(&self) -> &PopulationConfig {
        &self.config
    }

    /// Number of completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Enables per-round recording of opinion counts (see
    /// [`World::series`]).
    pub fn record_series(&mut self) {
        if self.series.is_none() {
            self.series = Some(OpinionSeries::new(self.config.n()));
        }
    }

    /// The recorded opinion series, if [`World::record_series`] was called.
    pub fn series(&self) -> Option<&OpinionSeries> {
        self.series.as_ref()
    }

    /// Applies an arbitrary mutation to every agent's state *before* the
    /// run starts — the self-stabilization adversary of Section 1.3. The
    /// closure receives the agent id, a mutable reference to its state, and
    /// the world RNG.
    ///
    /// Roles are not passed: the model forbids the adversary from changing
    /// them (it may only corrupt internal state).
    pub fn corrupt_agents<F>(&mut self, mut corrupt: F)
    where
        F: FnMut(usize, &mut P::Agent, &mut StdRng),
    {
        for (id, agent) in self.agents.iter_mut().enumerate() {
            corrupt(id, agent, &mut self.rng);
        }
    }

    /// Read access to an agent's state (experiments inspect weak opinions).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn agent(&self, id: usize) -> &P::Agent {
        &self.agents[id]
    }

    /// Iterates over all agent states in id order.
    pub fn iter_agents(&self) -> impl Iterator<Item = &P::Agent> {
        self.agents.iter()
    }

    /// Executes one synchronous round: display → sample+noise → update.
    pub fn step(&mut self) {
        // Step 1: displays.
        for (slot, agent) in self.displays.iter_mut().zip(&self.agents) {
            *slot = agent.display(&mut self.rng);
        }
        crate::invariants::check_displays_in_alphabet(&self.displays, self.channel.alphabet_size());
        // Steps 2+3: noisy observations.
        self.channel.fill_observations(
            &self.displays,
            self.config.h(),
            &mut self.rng,
            &mut self.observations,
        );
        let d = self.channel.alphabet_size();
        crate::invariants::check_observation_counts(&self.observations, d, self.config.h() as u64);
        // Step 4: updates.
        for (agent, obs) in self
            .agents
            .iter_mut()
            .zip(self.observations.chunks_exact(d))
        {
            agent.update(obs, &mut self.rng);
        }
        self.round += 1;
        if let Some(series) = self.series.as_mut() {
            let ones = self
                .agents
                .iter()
                .filter(|a| a.opinion() == Opinion::One)
                .count();
            series.push(ones);
        }
    }

    /// Runs `rounds` rounds unconditionally.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Number of agents currently holding the correct opinion.
    pub fn correct_count(&self) -> usize {
        let correct = self.config.correct_opinion();
        self.agents
            .iter()
            .filter(|a| a.opinion() == correct)
            .count()
    }

    /// Returns `true` if every agent (sources included) holds the correct
    /// opinion — the paper's consensus condition (Definition 2).
    pub fn is_consensus(&self) -> bool {
        self.correct_count() == self.config.n()
    }

    /// Steps until consensus on the correct opinion or until `budget`
    /// rounds have run.
    pub fn run_until_consensus(&mut self, budget: u64) -> RunOutcome {
        let start = self.round;
        while self.round - start < budget {
            self.step();
            if self.is_consensus() {
                return RunOutcome::Converged {
                    rounds: self.round - start,
                };
            }
        }
        RunOutcome::TimedOut {
            budget,
            correct_at_end: self.correct_count(),
        }
    }

    /// Steps until the consensus has *held* for `window` consecutive rounds
    /// (or the budget runs out), returning the round at which the stable
    /// window began. Used by the self-stabilization persistence experiment:
    /// Definition 2 requires consensus to be reached *and kept*.
    pub fn run_until_stable_consensus(&mut self, budget: u64, window: u64) -> RunOutcome {
        let start = self.round;
        let mut streak: u64 = 0;
        while self.round - start < budget {
            self.step();
            if self.is_consensus() {
                streak += 1;
                if streak >= window {
                    return RunOutcome::Converged {
                        rounds: self.round - start - (window - 1),
                    };
                }
            } else {
                streak = 0;
            }
        }
        RunOutcome::TimedOut {
            budget,
            correct_at_end: self.correct_count(),
        }
    }
}

impl<P: Protocol> std::fmt::Debug for World<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("config", &self.config)
            .field("round", &self.round)
            .field("correct_count", &self.correct_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Role;
    use rand::Rng;

    /// Copy-the-majority test protocol; sources stubbornly display and hold
    /// their preference.
    struct Majority;
    struct MajorityAgent {
        role: Role,
        opinion: Opinion,
    }

    impl Protocol for Majority {
        type Agent = MajorityAgent;
        fn alphabet_size(&self) -> usize {
            2
        }
        fn init_agent(&self, role: Role, _rng: &mut StdRng) -> MajorityAgent {
            let opinion = role.preference().unwrap_or(Opinion::Zero);
            MajorityAgent { role, opinion }
        }
    }

    impl AgentState for MajorityAgent {
        fn display(&self, _rng: &mut StdRng) -> usize {
            self.opinion.as_index()
        }
        fn update(&mut self, observed: &[u64], rng: &mut StdRng) {
            if let Role::Source(p) = self.role {
                self.opinion = p;
                return;
            }
            self.opinion = match observed[1].cmp(&observed[0]) {
                std::cmp::Ordering::Greater => Opinion::One,
                std::cmp::Ordering::Less => Opinion::Zero,
                std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
            };
        }
        fn opinion(&self) -> Opinion {
            self.opinion
        }
    }

    /// Plain majority dynamics can only amplify an existing display
    /// majority (that inability to spread from few sources is the paper's
    /// whole motivation), so the toy convergence tests seed a *majority* of
    /// stubborn sources.
    fn world(seed: u64) -> World<Majority> {
        let config = PopulationConfig::new(32, 0, 20, 32).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.05).unwrap();
        World::new(&Majority, config, &noise, ChannelKind::Aggregated, seed).unwrap()
    }

    /// A fully-noisy world (δ = ½): observations are fair coins, so
    /// non-source opinions are re-randomized every round.
    fn noisy_world(seed: u64) -> World<Majority> {
        let config = PopulationConfig::new(32, 0, 4, 32).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.5).unwrap();
        World::new(&Majority, config, &noise, ChannelKind::Aggregated, seed).unwrap()
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let config = PopulationConfig::new(8, 0, 1, 1).unwrap();
        let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
        let err = World::new(&Majority, config, &noise, ChannelKind::Exact, 0).unwrap_err();
        assert!(matches!(
            err,
            EngineError::AlphabetMismatch {
                protocol: 2,
                noise: 4
            }
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = world(7);
        let mut b = world(7);
        a.run(20);
        b.run(20);
        assert_eq!(a.correct_count(), b.correct_count());
        let ops_a: Vec<Opinion> = a.iter_agents().map(|x| x.opinion()).collect();
        let ops_b: Vec<Opinion> = b.iter_agents().map(|x| x.opinion()).collect();
        assert_eq!(ops_a, ops_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = noisy_world(1);
        let mut b = noisy_world(2);
        a.run(1);
        b.run(1);
        let ops_a: Vec<Opinion> = a.iter_agents().map(|x| x.opinion()).collect();
        let ops_b: Vec<Opinion> = b.iter_agents().map(|x| x.opinion()).collect();
        // Under pure noise each of the 28 non-source opinions is a fair
        // coin, so identical vectors across seeds are (2^-28)-unlikely.
        assert_ne!(ops_a, ops_b);
    }

    #[test]
    fn majority_converges_with_big_h_and_low_noise() {
        let mut w = world(42);
        let outcome = w.run_until_consensus(500);
        assert!(outcome.converged(), "outcome: {outcome:?}");
        assert!(w.is_consensus());
        assert_eq!(w.correct_count(), 32);
    }

    #[test]
    fn series_records_when_enabled() {
        let mut w = world(3);
        assert!(w.series().is_none());
        w.record_series();
        w.run(5);
        let s = w.series().unwrap();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn run_until_consensus_times_out_on_tiny_budget() {
        let mut w = world(5);
        let outcome = w.run_until_consensus(1);
        // One round of majority under noise will almost surely not convert
        // all 28 non-sources; accept either but check invariants.
        match outcome {
            RunOutcome::Converged { rounds } => assert_eq!(rounds, 1),
            RunOutcome::TimedOut {
                budget,
                correct_at_end,
            } => {
                assert_eq!(budget, 1);
                assert!(correct_at_end <= 32);
            }
        }
        assert_eq!(w.round(), 1);
    }

    #[test]
    fn stable_consensus_requires_window() {
        let mut w = world(8);
        let outcome = w.run_until_stable_consensus(1000, 10);
        assert!(outcome.converged());
        // After the stable window, the system is (still) in consensus.
        assert!(w.is_consensus());
    }

    #[test]
    fn corrupt_agents_flips_states() {
        let mut w = world(9);
        w.corrupt_agents(|_, agent, _| agent.opinion = Opinion::Zero);
        assert_eq!(w.correct_count(), 0);
        // Sources re-assert their preference on the next update.
        w.step();
        assert!(w.correct_count() >= 4);
    }

    /// A protocol that displays a symbol outside its declared alphabet —
    /// the class of bug `invariants::check_displays_in_alphabet` exists to
    /// catch at the point of violation rather than as a downstream index
    /// panic. Only live when the checks are compiled in (debug builds and
    /// `--features strict-invariants`).
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    #[test]
    #[should_panic(expected = "outside the 2-symbol alphabet")]
    fn rogue_display_is_caught_by_invariants() {
        struct Rogue;
        struct RogueAgent;
        impl Protocol for Rogue {
            type Agent = RogueAgent;
            fn alphabet_size(&self) -> usize {
                2
            }
            fn init_agent(&self, _role: Role, _rng: &mut StdRng) -> RogueAgent {
                RogueAgent
            }
        }
        impl AgentState for RogueAgent {
            fn display(&self, _rng: &mut StdRng) -> usize {
                2
            }
            fn update(&mut self, _observed: &[u64], _rng: &mut StdRng) {}
            fn opinion(&self) -> Opinion {
                Opinion::Zero
            }
        }
        let config = PopulationConfig::new(4, 0, 1, 4).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let mut w = World::new(&Rogue, config, &noise, ChannelKind::Aggregated, 0).unwrap();
        w.step();
    }

    #[test]
    fn debug_output_mentions_round() {
        let w = world(1);
        assert!(format!("{w:?}").contains("round"));
    }
}
