//! The *noisy PUSH(h)* model — the contrast class discussed in §1.5 of the
//! paper.
//!
//! In PUSH, each round every agent may *send* a message to `h` uniformly
//! random targets (or stay silent). Message contents pass through the same
//! noise matrix as in PULL, but the *event of reception is reliable*: a
//! receiver knows that someone intended to communicate, even if it cannot
//! trust the content. Feinerman, Haeupler and Korman (2017) exploited
//! exactly this to spread information in `O(log n)` rounds at `h = 1` —
//! exponentially faster than the `Ω(n)` PULL(1) lower bound. The paper
//! under reproduction cites this separation as the reason PULL is the
//! *hard* model; this module exists so the separation can be measured
//! rather than asserted (experiment EXP-PUSH).
//!
//! The implementation mirrors [`crate::world`]: a [`PushWorld`] drives
//! [`PushProtocol`] state machines. Each round:
//!
//! 1. every agent chooses to send a symbol or stay silent
//!    ([`PushAgentState::send`]);
//! 2. every sent message is addressed to `h` independent uniform targets
//!    (self included) and each copy passes through the noise matrix;
//! 3. every agent receives its incoming multiset as per-symbol counts
//!    ([`PushAgentState::receive`]) — a zero vector means *no one pushed
//!    to you*, which in PUSH is itself reliable information.

use crate::streams::StreamRng;
use np_linalg::noise::NoiseMatrix;
use np_stats::alias::RowSamplers;
use rand::{Rng, SeedableRng};

use crate::metrics::RunOutcome;
use crate::opinion::Opinion;
use crate::population::{PopulationConfig, Role};
use crate::{EngineError, Result};

/// A spreading algorithm for the noisy PUSH(h) model.
pub trait PushProtocol {
    /// The per-agent state machine type.
    type Agent: PushAgentState;

    /// Size of the communication alphabet `|Σ|`.
    fn alphabet_size(&self) -> usize;

    /// Creates the initial state for an agent with the given role.
    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> Self::Agent;
}

/// Per-round behaviour of a PUSH agent.
pub trait PushAgentState {
    /// The symbol to push this round, or `None` to stay silent.
    ///
    /// Silence is meaningful in PUSH: unlike a noisy designated bit,
    /// *not sending* cannot be corrupted into sending.
    fn send(&self, rng: &mut StreamRng) -> Option<usize>;

    /// Consumes this round's incoming messages: `received[σ]` is how many
    /// pushed copies arrived (post-noise) as symbol `σ`. All-zero means no
    /// message arrived this round.
    fn receive(&mut self, received: &[u64], rng: &mut StreamRng);

    /// The agent's current opinion.
    fn opinion(&self) -> Opinion;
}

/// A running instance of the noisy PUSH(h) model.
///
/// # Example
///
/// See [`np_baselines::push_spreading`](../np_baselines/push_spreading)
/// for a full protocol; the structure mirrors [`crate::world::World`].
pub struct PushWorld<P: PushProtocol> {
    config: PopulationConfig,
    agents: Vec<P::Agent>,
    samplers: RowSamplers,
    inbox: Vec<u64>,
    rng: StreamRng,
    round: u64,
}

impl<P: PushProtocol> PushWorld<P> {
    /// Builds a PUSH world over the given population and noise matrix.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AlphabetMismatch`] if the protocol's alphabet
    /// size differs from the noise matrix's.
    pub fn new(
        protocol: &P,
        config: PopulationConfig,
        noise: &NoiseMatrix,
        seed: u64,
    ) -> Result<Self> {
        if protocol.alphabet_size() != noise.dim() {
            return Err(EngineError::AlphabetMismatch {
                protocol: protocol.alphabet_size(),
                noise: noise.dim(),
            });
        }
        // The PUSH reference model is a sequential single-threaded
        // comparison baseline, outside the chunked round loop; a single
        // sequential stream generator is the right shape here.
        let mut rng = StreamRng::seed_from_u64(seed);
        let agents: Vec<P::Agent> = config
            .iter_roles()
            .map(|role| protocol.init_agent(role, &mut rng))
            .collect();
        let rows: Vec<Vec<f64>> = (0..noise.dim())
            .map(|s| noise.observation_distribution(s).to_vec())
            .collect();
        crate::invariants::check_rows_stochastic(&rows);
        // xtask-allow: unwrap (NoiseMatrix rows are valid distributions by construction)
        let samplers = RowSamplers::new(&rows).expect("noise rows are distributions");
        let n = config.n();
        let d = noise.dim();
        Ok(PushWorld {
            config,
            agents,
            samplers,
            inbox: vec![0; n * d],
            rng,
            round: 0,
        })
    }

    /// The population configuration.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Number of completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Read access to an agent's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn agent(&self, id: usize) -> &P::Agent {
        &self.agents[id]
    }

    /// Iterates over all agent states in id order.
    pub fn iter_agents(&self) -> impl Iterator<Item = &P::Agent> {
        self.agents.iter()
    }

    /// Executes one synchronous round: send → route+noise → receive.
    pub fn step(&mut self) {
        let n = self.config.n();
        let h = self.config.h();
        let d = self.samplers.len();
        self.inbox.fill(0);
        // Senders route h noisy copies each to uniform targets.
        for sender in 0..n {
            if let Some(symbol) = self.agents[sender].send(&mut self.rng) {
                debug_assert!(symbol < d, "pushed symbol out of range");
                for _ in 0..h {
                    let target = self.rng.gen_range(0..n);
                    let observed = self.samplers.observe(&mut self.rng, symbol);
                    self.inbox[target * d + observed] += 1;
                }
            }
        }
        for (agent, received) in self.agents.iter_mut().zip(self.inbox.chunks_exact(d)) {
            agent.receive(received, &mut self.rng);
        }
        self.round += 1;
    }

    /// Runs `rounds` rounds unconditionally.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Number of agents currently holding the correct opinion.
    pub fn correct_count(&self) -> usize {
        let correct = self.config.correct_opinion();
        self.agents
            .iter()
            .filter(|a| a.opinion() == correct)
            .count()
    }

    /// Returns `true` if every agent holds the correct opinion.
    pub fn is_consensus(&self) -> bool {
        self.correct_count() == self.config.n()
    }

    /// Steps until consensus on the correct opinion or until `budget`
    /// rounds have run.
    pub fn run_until_consensus(&mut self, budget: u64) -> RunOutcome {
        let start = self.round;
        while self.round - start < budget {
            self.step();
            if self.is_consensus() {
                return RunOutcome::Converged {
                    rounds: self.round - start,
                };
            }
        }
        RunOutcome::TimedOut {
            budget,
            correct_at_end: self.correct_count(),
        }
    }
}

impl<P: PushProtocol> std::fmt::Debug for PushWorld<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PushWorld")
            .field("config", &self.config)
            .field("round", &self.round)
            .field("correct_count", &self.correct_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test protocol: sources shout their preference; everyone else stays
    /// silent and adopts the majority symbol ever received.
    struct Shout;
    struct ShoutAgent {
        role: Role,
        counts: [u64; 2],
        opinion: Opinion,
    }

    impl PushProtocol for Shout {
        type Agent = ShoutAgent;
        fn alphabet_size(&self) -> usize {
            2
        }
        fn init_agent(&self, role: Role, _rng: &mut StreamRng) -> ShoutAgent {
            ShoutAgent {
                role,
                counts: [0, 0],
                opinion: role.preference().unwrap_or(Opinion::Zero),
            }
        }
    }

    impl PushAgentState for ShoutAgent {
        fn send(&self, _rng: &mut StreamRng) -> Option<usize> {
            self.role.preference().map(Opinion::as_index)
        }
        fn receive(&mut self, received: &[u64], _rng: &mut StreamRng) {
            if self.role.is_source() {
                return;
            }
            self.counts[0] += received[0];
            self.counts[1] += received[1];
            if self.counts[0] + self.counts[1] > 0 {
                self.opinion = Opinion::from_bool(self.counts[1] > self.counts[0]);
            }
        }
        fn opinion(&self) -> Opinion {
            self.opinion
        }
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let config = PopulationConfig::new(8, 0, 1, 1).unwrap();
        let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
        assert!(matches!(
            PushWorld::new(&Shout, config, &noise, 0),
            Err(EngineError::AlphabetMismatch { .. })
        ));
    }

    #[test]
    fn silent_population_delivers_nothing() {
        // With zero sources... not constructible; instead make sources
        // shout into a noiseless channel and verify message conservation:
        // every push lands somewhere.
        let config = PopulationConfig::new(16, 0, 4, 2).unwrap();
        let noise = NoiseMatrix::noiseless(2);
        let mut world = PushWorld::new(&Shout, config, &noise, 1).unwrap();
        world.step();
        let received: u64 = world.iter_agents().map(|a| a.counts[0] + a.counts[1]).sum();
        // 4 sources × h = 2 pushes each; sources don't record but
        // non-sources might not receive all (pushes can land on sources,
        // who ignore them). Re-check conservation at the inbox level via a
        // fresh world where everyone records:
        assert!(received <= 8);
    }

    #[test]
    fn noiseless_shout_converges() {
        let config = PopulationConfig::new(64, 0, 1, 1).unwrap();
        let noise = NoiseMatrix::noiseless(2);
        let mut world = PushWorld::new(&Shout, config, &noise, 2).unwrap();
        // The single source pushes one copy per round; coupon collector
        // says ~n ln n rounds for everyone to hear at least once.
        let outcome = world.run_until_consensus(20_000);
        assert!(outcome.converged(), "{outcome:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let config = PopulationConfig::new(32, 0, 1, 2).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let mut a = PushWorld::new(&Shout, config, &noise, 9).unwrap();
        let mut b = PushWorld::new(&Shout, config, &noise, 9).unwrap();
        a.run(50);
        b.run(50);
        let ops_a: Vec<Opinion> = a.iter_agents().map(|x| x.opinion()).collect();
        let ops_b: Vec<Opinion> = b.iter_agents().map(|x| x.opinion()).collect();
        assert_eq!(ops_a, ops_b);
        assert_eq!(a.round(), 50);
    }

    #[test]
    fn noise_corrupts_contents_but_not_reception() {
        // Fully mixing noise (δ = 1/2): contents are coin flips, but the
        // *number* of received messages is unchanged — receipt is
        // reliable.
        let config = PopulationConfig::new(16, 0, 8, 4).unwrap();
        let noise = NoiseMatrix::uniform(2, 0.5).unwrap();
        let mut world = PushWorld::new(&Shout, config, &noise, 3).unwrap();
        world.run(10);
        let received: u64 = world.iter_agents().map(|a| a.counts[0] + a.counts[1]).sum();
        // 8 sources × 4 pushes × 10 rounds = 320 copies; non-sources hold
        // 16−8 of 16 slots uniformly: expected 160, binomial spread.
        assert!(received > 80 && received < 240, "received = {received}");
    }

    #[test]
    fn debug_output_mentions_round() {
        let config = PopulationConfig::new(8, 0, 1, 1).unwrap();
        let noise = NoiseMatrix::noiseless(2);
        let world = PushWorld::new(&Shout, config, &noise, 0).unwrap();
        assert!(format!("{world:?}").contains("round"));
    }
}
