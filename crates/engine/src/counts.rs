//! Mean-field counts backend — the third execution backend beside the
//! scalar and columnar per-agent paths.
//!
//! Under uniform PULL with replacement, the aggregated channel collapses
//! each agent's round to `Multinomial(h, q)` observation counts with
//! `q_j = Σ_σ (c_σ/n)·N_σj` a function of the *display histogram* alone
//! (see [`crate::channel`]). Conditioned on that histogram, the agents'
//! observation vectors are i.i.d. — so for a protocol whose per-agent
//! update is a pure function of its own observations plus private coins,
//! every agent in the same *state class* is exchangeable. Tracking
//! per-class **counts** and drawing each class's transition outcome from
//! the exact binomial/multinomial laws in `np-stats` reproduces the
//! per-agent engine's correct-count trajectory *in distribution* at
//! `O(#classes)` cost per round: population sizes of `10⁷–10⁸` — where
//! the paper's asymptotic claims first become visible — run in
//! milliseconds per round on one thread.
//!
//! What is and is not preserved:
//!
//! * **Distributional, not bit-level, equivalence.** The per-agent engine
//!   spends one RNG stream per agent per stage; this backend spends a
//!   single update stream per round. Trajectories under the same seed
//!   differ; their *laws* agree (cross-validated by KS tests against the
//!   per-agent engine in `crates/core/tests/mean_field_crossval.rs`).
//! * **Aggregated, with-replacement only.** Without replacement the `h`
//!   observations of one agent are drawn from a shrinking pool, the
//!   per-agent counts become multivariate hypergeometric, and — more
//!   fundamentally — the collapse to a product law over agents fails, so
//!   the class-count transition is no longer exact. Construction rejects
//!   such channels. See DESIGN.md §14 for the full argument.
//! * **No faults, snapshots, or per-agent corruption.** Those subsystems
//!   address individual agents; a counts state has none to address.

use crate::channel::{Channel, ChannelKind, SamplingMode};
use crate::error::EngineError;
use crate::metrics::{MetricsSweep, OpinionSeries, RoundMetrics, RunOutcome};
use crate::opinion::Opinion;
use crate::population::PopulationConfig;
use crate::streams::{RoundStreams, StreamRng, StreamStage};
use crate::Result;
use np_linalg::noise::NoiseMatrix;

/// A protocol that can run on class counts. Implemented by SF, SSF, and
/// h-majority next to their per-agent ports; the implementations must be
/// distribution-identical to the per-agent transition functions (the
/// cross-validation suite holds them to that).
pub trait CountsProtocol {
    /// The class-count state this protocol evolves.
    type State: CountsState;

    /// Message alphabet size `|Σ|` (must match the noise matrix).
    fn alphabet_size(&self) -> usize;

    /// Draws the round-zero class counts: the per-agent `init_agent`
    /// coins, collapsed to binomial/multinomial splits over the
    /// population.
    fn init_counts(&self, config: &PopulationConfig, rng: &mut StreamRng) -> Self::State;
}

/// The evolving class-count configuration of a [`CountsProtocol`].
pub trait CountsState {
    /// Writes the display histogram of the current configuration into
    /// `out` (length `|Σ|`, already zeroed by the caller).
    fn display_histogram(&self, out: &mut [u64]);

    /// Advances every class through one round, given the collapsed
    /// single-observation law `obs_law` of this round's display histogram
    /// and the sample count `h`. All randomness must come from `rng` (the
    /// round's update stream), keeping runs reproducible per seed.
    fn advance_round(&mut self, obs_law: &[f64], h: u64, rng: &mut StreamRng);

    /// One observability sweep of the current configuration — same
    /// contract as the per-agent `metrics_sweep` (correct count, stage
    /// occupancy, weak-opinion accuracy).
    fn metrics_sweep(&self, correct: Opinion) -> MetricsSweep;
}

/// The mean-field analogue of [`crate::world::World`]: owns a counts
/// state and a channel, advances rounds, and exposes the same run /
/// consensus / recording API so experiment harnesses can switch backends
/// without restructuring.
pub struct CountsWorld<P: CountsProtocol> {
    state: P::State,
    config: PopulationConfig,
    channel: Channel,
    correct_opinion: Opinion,
    seed: u64,
    round: u64,
    series: Option<OpinionSeries>,
    trace: Option<Vec<RoundMetrics>>,
}

impl<P: CountsProtocol> std::fmt::Debug for CountsWorld<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `P::State` carries no Debug bound; identify the run instead.
        f.debug_struct("CountsWorld")
            .field("config", &self.config)
            .field("seed", &self.seed)
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl<P: CountsProtocol> CountsWorld<P> {
    /// Builds a mean-field world with an aggregated, with-replacement
    /// channel (the only configuration under which the class-count
    /// transition is exact; see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AlphabetMismatch`] if the protocol's
    /// alphabet size differs from the noise matrix's.
    pub fn new(
        protocol: &P,
        config: PopulationConfig,
        noise: &NoiseMatrix,
        seed: u64,
    ) -> Result<Self> {
        if protocol.alphabet_size() != noise.dim() {
            return Err(EngineError::AlphabetMismatch {
                protocol: protocol.alphabet_size(),
                noise: noise.dim(),
            });
        }
        let channel = Channel::new(noise, ChannelKind::Aggregated);
        debug_assert_eq!(channel.sampling_mode(), SamplingMode::WithReplacement);
        crate::invariants::check_population(&config);
        let correct_opinion = config.correct_opinion();
        let mut init_rng = RoundStreams::new(seed, 0).rng(0, StreamStage::Init);
        let state = protocol.init_counts(&config, &mut init_rng);
        Ok(CountsWorld {
            state,
            config,
            channel,
            correct_opinion,
            seed,
            round: 0,
            series: None,
            trace: None,
        })
    }

    /// The population configuration.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Number of completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The master seed this world was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The opinion counted as correct (the configuration's majority
    /// preference).
    pub fn correct_opinion(&self) -> Opinion {
        self.correct_opinion
    }

    /// Read access to the class-count state.
    pub fn state(&self) -> &P::State {
        &self.state
    }

    /// Enables per-round recording of opinion counts (see
    /// [`CountsWorld::series`]).
    pub fn record_series(&mut self) {
        if self.series.is_none() {
            self.series = Some(OpinionSeries::new(self.config.n()));
        }
    }

    /// The recorded opinion series, if [`CountsWorld::record_series`] was
    /// called.
    pub fn series(&self) -> Option<&OpinionSeries> {
        self.series.as_ref()
    }

    /// Enables the per-round metrics trace (see [`CountsWorld::trace`]).
    pub fn record_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace, if [`CountsWorld::record_trace`] was called.
    /// Fault labels are always empty — the backend has no fault
    /// subsystem.
    pub fn trace(&self) -> Option<&[RoundMetrics]> {
        self.trace.as_deref()
    }

    /// Executes one synchronous round: histogram → collapsed law →
    /// class-count transitions.
    pub fn step(&mut self) {
        let next_round = self.round + 1;
        let mut hist = vec![0u64; self.channel.alphabet_size()];
        self.state.display_histogram(&mut hist);
        // Preconditions hold by construction (non-empty population,
        // with-replacement sampling), so take the trusted hot path.
        let ctx = self
            .channel
            .begin_round_from_counts_trusted(hist, self.config.h());
        // One update stream per round. Agent index 0 is a label, not an
        // agent: the per-agent streams' addressing scheme is reused so the
        // backend inherits the same cross-round independence guarantees.
        let mut rng = RoundStreams::new(self.seed, next_round).rng(0, StreamStage::Update);
        self.state
            .advance_round(ctx.obs_law(), self.config.h() as u64, &mut rng);
        self.round = next_round;
        if self.series.is_some() || self.trace.is_some() {
            let sweep = self.state.metrics_sweep(self.correct_opinion);
            let correct = sweep.correct;
            if let Some(series) = self.series.as_mut() {
                let ones = match self.correct_opinion {
                    Opinion::One => correct,
                    Opinion::Zero => self.config.n() - correct,
                };
                series.push(ones);
            }
            if let Some(trace) = self.trace.as_mut() {
                trace.push(RoundMetrics {
                    round: self.round,
                    n: self.config.n(),
                    correct,
                    stages: sweep.stages,
                    weak_formed: sweep.weak_formed,
                    weak_correct: sweep.weak_correct,
                    faults: Vec::new(),
                });
            }
        }
    }

    /// Runs `rounds` rounds unconditionally.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Number of agents currently holding the correct opinion.
    pub fn correct_count(&self) -> usize {
        self.state.metrics_sweep(self.correct_opinion).correct
    }

    /// Returns `true` if every agent (sources included) holds the correct
    /// opinion — the paper's consensus condition (Definition 2).
    pub fn is_consensus(&self) -> bool {
        self.correct_count() == self.config.n()
    }

    /// Steps until consensus on the correct opinion or until `budget`
    /// rounds have run — same semantics as
    /// [`crate::world::World::run_until_consensus`].
    pub fn run_until_consensus(&mut self, budget: u64) -> RunOutcome {
        if self.is_consensus() {
            return RunOutcome::Converged { rounds: 0 };
        }
        let start = self.round;
        while self.round - start < budget {
            self.step();
            if self.is_consensus() {
                return RunOutcome::Converged {
                    rounds: self.round - start,
                };
            }
        }
        RunOutcome::TimedOut {
            budget,
            correct_at_end: self.correct_count(),
        }
    }

    /// Steps until consensus has *held* for `window` consecutive rounds —
    /// same semantics as
    /// [`crate::world::World::run_until_stable_consensus`].
    pub fn run_until_stable_consensus(&mut self, budget: u64, window: u64) -> RunOutcome {
        let window = window.max(1);
        if self.is_consensus() {
            return RunOutcome::Converged { rounds: 0 };
        }
        let start = self.round;
        let mut streak: u64 = 0;
        while self.round - start < budget {
            self.step();
            if self.is_consensus() {
                streak += 1;
                if streak >= window {
                    return RunOutcome::Converged {
                        rounds: (self.round - start).saturating_sub(window - 1),
                    };
                }
            } else {
                streak = 0;
            }
        }
        RunOutcome::TimedOut {
            budget,
            correct_at_end: self.correct_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_stats::binomial;

    /// Toy counts protocol: every agent displays its opinion; each round
    /// every non-source adopts opinion 1 with the collapsed law's
    /// probability of observing a 1. Enough structure to exercise the
    /// world mechanics end to end.
    struct Drift;

    struct DriftState {
        n: u64,
        s1: u64,
        non_ones: u64,
    }

    impl CountsProtocol for Drift {
        type State = DriftState;

        fn alphabet_size(&self) -> usize {
            2
        }

        fn init_counts(&self, config: &PopulationConfig, _rng: &mut StreamRng) -> DriftState {
            DriftState {
                n: config.n() as u64,
                s1: config.s1() as u64,
                non_ones: 0,
            }
        }
    }

    impl CountsState for DriftState {
        fn display_histogram(&self, out: &mut [u64]) {
            out[1] = self.non_ones + self.s1;
            out[0] = self.n - out[1];
        }

        fn advance_round(&mut self, obs_law: &[f64], _h: u64, rng: &mut StreamRng) {
            let non = self.n - self.s1;
            self.non_ones = binomial::sample_unchecked(rng, non, obs_law[1]);
        }

        fn metrics_sweep(&self, correct: Opinion) -> MetricsSweep {
            let ones = (self.non_ones + self.s1) as usize;
            let correct_count = match correct {
                Opinion::One => ones,
                Opinion::Zero => self.n as usize - ones,
            };
            MetricsSweep {
                correct: correct_count,
                stages: vec![(0, self.n as usize)],
                weak_formed: 0,
                weak_correct: 0,
            }
        }
    }

    fn world(seed: u64) -> CountsWorld<Drift> {
        let config = PopulationConfig::new(100, 0, 10, 16).unwrap();
        let noise = NoiseMatrix::noiseless(2);
        CountsWorld::new(&Drift, config, &noise, seed).unwrap()
    }

    #[test]
    fn rejects_alphabet_mismatch() {
        let config = PopulationConfig::new(100, 0, 10, 16).unwrap();
        let noise = NoiseMatrix::noiseless(4);
        assert!(matches!(
            CountsWorld::new(&Drift, config, &noise, 0),
            Err(EngineError::AlphabetMismatch {
                protocol: 2,
                noise: 4
            })
        ));
    }

    #[test]
    fn step_advances_rounds_and_records() {
        let mut w = world(3);
        w.record_series();
        w.record_trace();
        w.run(5);
        assert_eq!(w.round(), 5);
        assert_eq!(w.series().unwrap().len(), 5);
        let trace = w.trace().unwrap();
        assert_eq!(trace.len(), 5);
        assert_eq!(trace[4].round, 5);
        assert_eq!(trace[4].n, 100);
        assert!(trace.iter().all(|m| m.faults.is_empty()));
        // Series and trace must agree on the correct count.
        assert_eq!(
            w.series().unwrap().count(4, w.correct_opinion()),
            trace[4].correct
        );
    }

    #[test]
    fn noiseless_all_one_start_is_absorbing() {
        // Force the all-one configuration: noiseless observations of an
        // all-one display keep every agent at 1 forever.
        let mut w = world(7);
        w.state.non_ones = 90;
        assert!(w.is_consensus());
        assert_eq!(
            w.run_until_consensus(10),
            RunOutcome::Converged { rounds: 0 }
        );
        w.run(3);
        assert_eq!(w.correct_count(), 100);
    }

    #[test]
    fn converges_under_drift_toward_sources() {
        // 10% stubborn one-sources under a noiseless channel: q₁ ≥ 0.1
        // every round, and once non-sources tip to ones q₁ grows — the
        // chain absorbs at all-one almost surely within a modest budget.
        let mut w = world(11);
        let outcome = w.run_until_stable_consensus(500, 3);
        assert!(outcome.converged(), "got {outcome:?}");
    }

    #[test]
    fn same_seed_reproduces_trajectory() {
        let runs: Vec<Vec<usize>> = (0..2)
            .map(|_| {
                let mut w = world(42);
                w.record_series();
                w.run(20);
                w.series().unwrap().counts(Opinion::One)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        let mut other = world(43);
        other.record_series();
        other.run(20);
        assert_ne!(
            runs[0],
            other.series().unwrap().counts(Opinion::One),
            "different seeds should diverge"
        );
    }
}
