//! The noisy observation channel — steps 2 and 3 of the model round.
//!
//! Two interchangeable implementations are provided:
//!
//! * [`ChannelKind::Exact`] draws each of the `h` samples literally:
//!   pick a uniform agent, look up its displayed symbol, pass that symbol
//!   through an alias-sampled row of the noise matrix. Cost `Θ(n·h)` per
//!   round.
//!
//! * [`ChannelKind::Aggregated`] exploits exchangeability. For one agent,
//!   the `h` sampled *displayed* symbols are i.i.d. categorical with
//!   probabilities `(c_σ/n)_σ`, where `c_σ` is the number of agents
//!   currently displaying `σ` — so the vector of how many samples landed on
//!   each displayed symbol is `Multinomial(h, c/n)`. Conditioned on that,
//!   the observations produced by the `k_σ` samples of symbol `σ` are
//!   i.i.d. draws from row `σ` of the noise matrix, so the per-symbol
//!   observation counts are `Multinomial(k_σ, N_σ)`. Summing over σ gives
//!   the agent's observation-count vector with *exactly* the same joint
//!   distribution as the literal channel — independent of `h`. This is
//!   what makes the paper's `h = n` regime (`Θ(n²)` messages per round)
//!   simulable at `n = 10⁵`.
//!
//!   The chunked hot path collapses the two stages further: composing the
//!   categorical display draw with the noise row gives each observation
//!   the mixture law `q_j = Σ_σ (c_σ/n)·N_σj`, so the agent's count
//!   vector is simply `Multinomial(h, q)` — `|Σ| − 1` binomial draws per
//!   agent, with the level-0 binomial served from a per-round cached
//!   inverse-cdf table ([`np_stats::binomial::CdfTable`]) built once in
//!   [`Channel::begin_round`]. The sequential path
//!   ([`Channel::fill_observations`]) keeps the literal two-stage
//!   factorization, so the distribution tests below compare the collapse
//!   against an independent implementation.
//!
//! Both channels deliver observations as per-symbol counts; see
//! [`crate::protocol`] for why this is lossless for anonymous protocols.

use std::ops::Range;

use crate::error::EngineError;
use crate::streams::StreamRng;
use crate::topology::Topology;
use np_linalg::noise::NoiseMatrix;
use np_stats::alias::RowSamplers;
use np_stats::binomial::CdfTable;
use np_stats::{hypergeometric, multinomial};
use rand::Rng;

use crate::streams::{RoundStreams, StreamStage};

/// Which channel implementation to use. The two are
/// distribution-identical; pick [`ChannelKind::Aggregated`] unless you are
/// specifically exercising the literal sampling path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelKind {
    /// Literal per-sample simulation, `Θ(n·h)` per round.
    Exact,
    /// Multinomial-count simulation, `O(n·|Σ|²)` per round.
    #[default]
    Aggregated,
}

/// How each agent's `h` samples are drawn from the population.
///
/// The paper's model is [`SamplingMode::WithReplacement`] (an agent may
/// sample the same agent twice, or itself). The without-replacement
/// variant is offered as a model-robustness check (experiment
/// EXP-REPLACE): at `h = n` it means "observe everyone exactly once",
/// which removes the sampling variance entirely and leaves only channel
/// noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SamplingMode {
    /// Uniform i.i.d. samples (the paper's model).
    #[default]
    WithReplacement,
    /// A uniform `h`-subset of the population (requires `h ≤ n`).
    WithoutReplacement,
}

/// A noisy PULL observation channel bound to a noise matrix.
///
/// # Example
///
/// ```
/// use np_engine::channel::{Channel, ChannelKind};
/// use np_linalg::noise::NoiseMatrix;
/// use np_engine::streams::StreamRng;
/// use rand::SeedableRng;
///
/// let noise = NoiseMatrix::noiseless(2);
/// let channel = Channel::new(&noise, ChannelKind::Aggregated);
/// let mut rng = StreamRng::seed_from_u64(0);
/// // Three agents all displaying symbol 1; h = 5 noiseless observations
/// // must all come back as 1.
/// let displays = vec![1, 1, 1];
/// let mut obs = vec![0u64; 3 * 2];
/// channel.fill_observations(&displays, 5, &mut rng, &mut obs);
/// assert_eq!(obs, vec![0, 5, 0, 5, 0, 5]);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    kind: ChannelKind,
    mode: SamplingMode,
    d: usize,
    /// Alias tables per displayed symbol (exact path and single draws).
    samplers: RowSamplers,
    /// Raw noise rows (aggregated path).
    rows: Vec<Vec<f64>>,
}

/// Read-only per-round sampling context produced by
/// [`Channel::begin_round`] and shared (by reference) across the chunk
/// workers of one round.
#[derive(Debug, Clone)]
pub struct RoundContext {
    /// Histogram of currently displayed symbols.
    disp_counts: Vec<u64>,
    /// The `h` this context was built for (the cached table below is a
    /// function of it).
    h: u64,
    /// The collapsed observation law `q_j = Σ_σ probs[σ]·N_σj` — the
    /// marginal distribution of a single noisy observation. Empty unless
    /// the channel is aggregated with replacement.
    obs_law: Vec<f64>,
    /// Cached inverse-cdf table for `Binomial(h, obs_law[0])`, the head
    /// draw of every agent's collapsed multinomial this round. `None`
    /// unless the channel is aggregated with replacement.
    level0: Option<CdfTable>,
}

impl RoundContext {
    /// The display histogram this context was built from.
    pub fn disp_counts(&self) -> &[u64] {
        &self.disp_counts
    }

    /// The collapsed single-observation law `q_j = Σ_σ (c_σ/n)·N_σj`,
    /// clamped and renormalized against float drift. Empty unless the
    /// channel is aggregated with replacement — the mean-field counts
    /// backend (which requires exactly that configuration) reads its
    /// per-round transition laws from here.
    pub fn obs_law(&self) -> &[f64] {
        &self.obs_law
    }
}

/// Clamps a collapsed observation law into `[0, 1]` per entry and rescales
/// it to sum to exactly 1. The input is a convex combination of stochastic
/// rows, so it is within a few ulps of a distribution already — this only
/// irons out accumulation drift (the rescale factor is `1 ± O(d·ε)`), it
/// never masks a genuinely malformed law.
///
/// # Errors
///
/// Returns [`EngineError::BadHistogram`] when the law sums to zero. A
/// convex combination of stochastic rows can only be all-zero if the
/// mixture weights were — i.e. a malformed (empty) histogram. Leaving the
/// zero law in place used to hand `CdfTable::new_unchecked(h, 0.0)` a
/// silently degenerate sampler; it is a hard error now.
fn normalize_law(q: &mut [f64]) -> Result<(), EngineError> {
    let mut total = 0.0f64;
    for qj in q.iter_mut() {
        *qj = qj.clamp(0.0, 1.0);
        total += *qj;
    }
    if total <= 0.0 {
        return Err(EngineError::BadHistogram {
            detail: "collapsed observation law sums to zero (malformed display histogram)".into(),
        });
    }
    for qj in q.iter_mut() {
        *qj /= total;
    }
    Ok(())
}

impl Channel {
    /// Builds a channel from a validated noise matrix, sampling with
    /// replacement (the paper's model).
    ///
    /// # Panics
    ///
    /// Never panics for a [`NoiseMatrix`]: its rows are valid probability
    /// vectors by construction.
    pub fn new(noise: &NoiseMatrix, kind: ChannelKind) -> Self {
        Channel::with_sampling(noise, kind, SamplingMode::WithReplacement)
    }

    /// Builds a channel with an explicit [`SamplingMode`].
    pub fn with_sampling(noise: &NoiseMatrix, kind: ChannelKind, mode: SamplingMode) -> Self {
        let rows: Vec<Vec<f64>> = (0..noise.dim())
            .map(|s| noise.observation_distribution(s).to_vec())
            .collect();
        crate::invariants::check_rows_stochastic(&rows);
        // xtask-allow: unwrap (NoiseMatrix rows are valid distributions by construction)
        let samplers = RowSamplers::new(&rows).expect("noise matrix rows are valid distributions");
        Channel {
            kind,
            mode,
            d: noise.dim(),
            samplers,
            rows,
        }
    }

    /// Alphabet size `|Σ|`.
    pub fn alphabet_size(&self) -> usize {
        self.d
    }

    /// The implementation in use.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// The sampling mode in use.
    pub fn sampling_mode(&self) -> SamplingMode {
        self.mode
    }

    /// The raw noise rows (`rows[displayed][observed]`), for snapshot
    /// serialization — together with [`Channel::kind`] and
    /// [`Channel::sampling_mode`] they reconstruct the channel exactly.
    pub(crate) fn noise_rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Applies the channel noise to a single displayed symbol, returning
    /// the observed symbol.
    ///
    /// # Panics
    ///
    /// Panics if `displayed >= self.alphabet_size()`.
    pub fn observe_one(&self, rng: &mut StreamRng, displayed: usize) -> usize {
        self.samplers.observe(rng, displayed)
    }

    /// Runs one full round of observations: every agent samples `h` agents
    /// (uniformly, with replacement, self included) from `displays` and
    /// observes their symbols through the noise.
    ///
    /// `out` is the flattened `n × d` observation-count matrix
    /// (`out[agent * d + symbol]`); it is zeroed and refilled.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != displays.len() * self.alphabet_size()`, if
    /// `displays` is empty, if any displayed symbol is out of range, or if
    /// `h > n` under [`SamplingMode::WithoutReplacement`].
    pub fn fill_observations(
        &self,
        displays: &[usize],
        h: usize,
        rng: &mut StreamRng,
        out: &mut [u64],
    ) {
        let n = displays.len();
        assert!(n > 0, "no agents to observe");
        assert_eq!(out.len(), n * self.d, "observation buffer has wrong size");
        if self.mode == SamplingMode::WithoutReplacement {
            assert!(
                h <= n,
                "cannot draw {h} distinct agents from {n} without replacement"
            );
        }
        out.fill(0);
        match self.kind {
            ChannelKind::Exact => self.fill_exact(displays, h, rng, out),
            ChannelKind::Aggregated => self.fill_aggregated(displays, h, rng, out),
        }
    }

    fn fill_exact(&self, displays: &[usize], h: usize, rng: &mut StreamRng, out: &mut [u64]) {
        let n = displays.len();
        match self.mode {
            SamplingMode::WithReplacement => {
                for agent in 0..n {
                    let base = agent * self.d;
                    for _ in 0..h {
                        let sampled = rng.gen_range(0..n);
                        let observed = self.samplers.observe(rng, displays[sampled]);
                        out[base + observed] += 1;
                    }
                }
            }
            SamplingMode::WithoutReplacement => {
                // Partial Fisher–Yates per agent over a persistent
                // permutation buffer: each agent's first h positions end up
                // a uniform h-subset; the buffer remains a permutation so
                // no reset is needed between agents.
                let mut idx: Vec<usize> = (0..n).collect();
                for agent in 0..n {
                    let base = agent * self.d;
                    for i in 0..h {
                        let j = rng.gen_range(i..n);
                        idx.swap(i, j);
                        let observed = self.samplers.observe(rng, displays[idx[i]]);
                        out[base + observed] += 1;
                    }
                }
            }
        }
    }

    /// Validates this round's displays and precomputes the shared,
    /// read-only context (display histogram and sampling probabilities)
    /// consumed by [`Channel::fill_observations_chunk`]. Call once per
    /// round, then fill disjoint agent ranges from any number of threads.
    ///
    /// # Panics
    ///
    /// Panics if `displays` is empty, if any displayed symbol is out of
    /// range, or if `h > n` under [`SamplingMode::WithoutReplacement`].
    pub fn begin_round(&self, displays: &[usize], h: usize) -> RoundContext {
        assert!(!displays.is_empty(), "no agents to observe");
        let mut disp_counts = vec![0u64; self.d];
        for &s in displays {
            assert!(s < self.d, "displayed symbol {s} out of range {}", self.d);
            disp_counts[s] += 1;
        }
        if self.mode == SamplingMode::WithoutReplacement {
            let n = displays.len();
            assert!(
                h <= n,
                "cannot draw {h} distinct agents from {n} without replacement"
            );
        }
        self.begin_round_from_counts_trusted(disp_counts, h)
    }

    /// Like [`Channel::begin_round`], but starts from an already-computed
    /// display histogram (symbols are in range by construction — a
    /// histogram cannot hold an out-of-range symbol). This is the public
    /// seam reachable from sweep specs and the mean-field backend, so the
    /// preconditions are typed errors rather than panics.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadHistogram`] if
    /// `disp_counts.len() != self.alphabet_size()`, if the histogram is
    /// empty (sums to zero), or if `h > n` under
    /// [`SamplingMode::WithoutReplacement`].
    pub fn begin_round_from_counts(
        &self,
        disp_counts: Vec<u64>,
        h: usize,
    ) -> Result<RoundContext, EngineError> {
        if disp_counts.len() != self.d {
            return Err(EngineError::BadHistogram {
                detail: format!(
                    "length {} does not match alphabet size {}",
                    disp_counts.len(),
                    self.d
                ),
            });
        }
        let n: u64 = disp_counts.iter().sum();
        if n == 0 {
            return Err(EngineError::BadHistogram {
                detail: "histogram sums to zero: no agents to observe".into(),
            });
        }
        if self.mode == SamplingMode::WithoutReplacement && h as u64 > n {
            return Err(EngineError::BadHistogram {
                detail: format!("cannot draw {h} distinct agents from {n} without replacement"),
            });
        }
        Ok(self.begin_round_from_counts_trusted(disp_counts, h))
    }

    /// Internal hot-path variant of [`Channel::begin_round_from_counts`]:
    /// the per-round loops in `World::step` and the counts backend have
    /// already established the preconditions, so this keeps them as debug
    /// asserts only.
    pub(crate) fn begin_round_from_counts_trusted(
        &self,
        disp_counts: Vec<u64>,
        h: usize,
    ) -> RoundContext {
        debug_assert_eq!(disp_counts.len(), self.d, "display histogram length");
        let n: u64 = disp_counts.iter().sum();
        debug_assert!(n > 0, "no agents to observe");
        debug_assert!(
            self.mode == SamplingMode::WithReplacement || h as u64 <= n,
            "oversampling without replacement"
        );
        let (obs_law, level0) =
            if self.kind == ChannelKind::Aggregated && self.mode == SamplingMode::WithReplacement {
                // Collapsed observation law: q_j = Σ_σ (c_σ/n)·N_σj. Built
                // once per round; every agent's count vector this round is
                // Multinomial(h, q).
                let mut q = vec![0.0f64; self.d];
                for (sigma, &c) in disp_counts.iter().enumerate() {
                    if c > 0 {
                        let w = c as f64 / n as f64;
                        for (qj, &row_j) in q.iter_mut().zip(&self.rows[sigma]) {
                            *qj += w * row_j;
                        }
                    }
                }
                // Float accumulation can leave any entry (not just q[0])
                // with −1e-17-scale negatives or Σq ≠ 1; the multinomial
                // chain and the mean-field transition laws consume the
                // whole vector, so clamp and renormalize all of it.
                normalize_law(&mut q)
                    // xtask-allow: unwrap (infallible by construction: the
                    // nonzero histogram validated above mixes stochastic
                    // rows, so the law sums to ≈ 1, never 0)
                    .expect("nonzero histogram over stochastic rows yields a nonzero law");
                let table = CdfTable::new_unchecked(h as u64, q[0]);
                (q, Some(table))
            } else {
                (Vec::new(), None)
            };
        RoundContext {
            disp_counts,
            h: h as u64,
            obs_law,
            level0,
        }
    }

    /// Fills the observations of agents `range` using each agent's
    /// [`StreamStage::Observe`] stream. `out` is the flattened
    /// `range.len() × d` count matrix for exactly those agents; it is
    /// zeroed and refilled. Distribution-identical to
    /// [`Channel::fill_observations`], and — because each agent's draws
    /// come from its own stream — the result is independent of how the
    /// population is split into ranges.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != range.len() * self.alphabet_size()` or if
    /// `range` exceeds the population.
    pub fn fill_observations_chunk(
        &self,
        ctx: &RoundContext,
        displays: &[usize],
        h: usize,
        range: Range<usize>,
        streams: &RoundStreams,
        out: &mut [u64],
    ) {
        assert!(range.end <= displays.len(), "chunk range out of bounds");
        assert_eq!(
            out.len(),
            range.len() * self.d,
            "observation buffer has wrong size"
        );
        out.fill(0);
        match self.kind {
            ChannelKind::Exact => self.fill_exact_chunk(displays, h, range, streams, out),
            ChannelKind::Aggregated => self.fill_aggregated_chunk(ctx, h, range, streams, out),
        }
    }

    fn fill_exact_chunk(
        &self,
        displays: &[usize],
        h: usize,
        range: Range<usize>,
        streams: &RoundStreams,
        out: &mut [u64],
    ) {
        let n = displays.len();
        match self.mode {
            SamplingMode::WithReplacement => {
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    let base = k * self.d;
                    for _ in 0..h {
                        let sampled = rng.gen_range(0..n);
                        let observed = self.samplers.observe(&mut rng, displays[sampled]);
                        out[base + observed] += 1;
                    }
                }
            }
            SamplingMode::WithoutReplacement => {
                // Partial Fisher–Yates per agent over one buffer; the swaps
                // are recorded and undone so every agent starts from the
                // identity permutation — this keeps each agent's subset a
                // pure function of its own stream, independent of chunking.
                let mut idx: Vec<usize> = (0..n).collect();
                // xtask-allow: hot-loop-rng-construct (per-chunk scratch,
                // reused across the agent loop below — not per-agent)
                let mut swaps: Vec<usize> = Vec::with_capacity(h);
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    let base = k * self.d;
                    swaps.clear();
                    for i in 0..h {
                        let j = rng.gen_range(i..n);
                        idx.swap(i, j);
                        swaps.push(j);
                        let observed = self.samplers.observe(&mut rng, displays[idx[i]]);
                        out[base + observed] += 1;
                    }
                    for (i, &j) in swaps.iter().enumerate().rev() {
                        idx.swap(i, j);
                    }
                }
            }
        }
    }

    fn fill_aggregated_chunk(
        &self,
        ctx: &RoundContext,
        h: usize,
        range: Range<usize>,
        streams: &RoundStreams,
        out: &mut [u64],
    ) {
        match self.mode {
            SamplingMode::WithReplacement => {
                // Collapsed compound draw (see module docs): each agent's
                // count vector is Multinomial(h, q) directly. The head
                // binomial comes from the per-round cached table; the tail
                // is the conditional chain written straight into `out` —
                // no per-agent scratch, no per-agent allocation.
                assert_eq!(ctx.h, h as u64, "round context was built for a different h");
                let table = ctx
                    .level0
                    .as_ref()
                    // xtask-allow: unwrap (infallible by construction:
                    // begin_round_from_counts always builds the table for
                    // this mode; documented panic otherwise)
                    .expect("with-replacement aggregated context carries a level-0 table");
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    let base = k * self.d;
                    let first = table.sample(&mut rng);
                    multinomial::sample_given_first(
                        &mut rng,
                        h as u64,
                        &ctx.obs_law,
                        first,
                        &mut out[base..base + self.d],
                    );
                }
            }
            SamplingMode::WithoutReplacement => {
                // Without replacement there is no collapse: the sampled
                // displays are multivariate hypergeometric, not i.i.d., so
                // the two-stage factorization stays.
                // xtask-allow: hot-loop-rng-construct (per-chunk scratch,
                // reused across the agent loop below — not per-agent)
                let mut sampled = vec![0u64; self.d];
                // xtask-allow: hot-loop-rng-construct (per-chunk scratch,
                // reused across the agent loop below — not per-agent)
                let mut observed = vec![0u64; self.d];
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    let base = k * self.d;
                    hypergeometric::sample_multivariate_into(
                        &mut rng,
                        &ctx.disp_counts,
                        h as u64,
                        &mut sampled,
                    );
                    #[allow(clippy::needless_range_loop)]
                    for sigma in 0..self.d {
                        let k_sigma = sampled[sigma];
                        if k_sigma == 0 {
                            continue;
                        }
                        multinomial::sample_into(
                            &mut rng,
                            k_sigma,
                            &self.rows[sigma],
                            &mut observed,
                        );
                        for (slot, c) in out[base..base + self.d].iter_mut().zip(&observed) {
                            *slot += c;
                        }
                    }
                }
            }
        }
    }

    /// Fills the observations of agents `range` when sampling is
    /// restricted to a [`Topology`]'s neighborhoods: each of the `h`
    /// samples is drawn from the agent's own neighbor slice instead of
    /// the whole population. The per-agent stream discipline is identical
    /// to [`Channel::fill_observations_chunk`], so the result is again
    /// independent of chunking and thread count.
    ///
    /// There is no shared [`RoundContext`] here: with a sparse graph each
    /// agent's observation law is a function of *its* neighborhood, so
    /// the aggregated path builds a local display histogram (`O(deg)`)
    /// and collapses it per agent — `O(n·|Σ|)`-shaped for bounded-degree
    /// graphs instead of falling back to the literal `Θ(n·h)`.
    ///
    /// # Panics
    ///
    /// Panics if `topo` is the complete graph (use the unrestricted path
    /// — it is faster and byte-identical to pre-topology trajectories),
    /// if `topo` does not cover `displays`, if `out` has the wrong size,
    /// or if `h` exceeds the minimum degree under
    /// [`SamplingMode::WithoutReplacement`].
    pub fn fill_observations_topo_chunk(
        &self,
        displays: &[usize],
        topo: &Topology,
        h: usize,
        range: Range<usize>,
        streams: &RoundStreams,
        out: &mut [u64],
    ) {
        assert!(
            !topo.is_complete(),
            "complete topology must use the unrestricted sampling path"
        );
        assert_eq!(
            topo.n(),
            displays.len(),
            "topology does not cover the population"
        );
        assert!(range.end <= displays.len(), "chunk range out of bounds");
        assert_eq!(
            out.len(),
            range.len() * self.d,
            "observation buffer has wrong size"
        );
        if self.mode == SamplingMode::WithoutReplacement {
            assert!(
                h <= topo.min_degree(),
                "cannot draw {h} distinct neighbors: minimum degree is {}",
                topo.min_degree()
            );
        }
        out.fill(0);
        match self.kind {
            ChannelKind::Exact => {
                self.fill_exact_topo_chunk(displays, topo, h, range, streams, out)
            }
            ChannelKind::Aggregated => {
                self.fill_aggregated_topo_chunk(displays, topo, h, range, streams, out)
            }
        }
    }

    fn fill_exact_topo_chunk(
        &self,
        displays: &[usize],
        topo: &Topology,
        h: usize,
        range: Range<usize>,
        streams: &RoundStreams,
        out: &mut [u64],
    ) {
        match self.mode {
            SamplingMode::WithReplacement => {
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    let nbrs = topo.neighbors(agent);
                    let base = k * self.d;
                    for _ in 0..h {
                        let sampled = nbrs[rng.gen_range(0..nbrs.len())] as usize;
                        let observed = self.samplers.observe(&mut rng, displays[sampled]);
                        out[base + observed] += 1;
                    }
                }
            }
            SamplingMode::WithoutReplacement => {
                // Partial Fisher–Yates over a copy of the neighbor slice:
                // the first h positions end up a uniform h-subset of the
                // neighborhood.
                // Per-chunk scratch, reused across the agent loop below.
                let mut pool: Vec<u32> = Vec::with_capacity(topo.max_degree());
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    pool.clear();
                    pool.extend_from_slice(topo.neighbors(agent));
                    let base = k * self.d;
                    for i in 0..h {
                        let j = rng.gen_range(i..pool.len());
                        pool.swap(i, j);
                        let observed = self.samplers.observe(&mut rng, displays[pool[i] as usize]);
                        out[base + observed] += 1;
                    }
                }
            }
        }
    }

    fn fill_aggregated_topo_chunk(
        &self,
        displays: &[usize],
        topo: &Topology,
        h: usize,
        range: Range<usize>,
        streams: &RoundStreams,
        out: &mut [u64],
    ) {
        // Per-agent *local* display histogram over the neighbor slice.
        // Per-chunk scratch, reused across the agent loop below.
        let mut local = vec![0u64; self.d];
        match self.mode {
            SamplingMode::WithReplacement => {
                // Local collapse: the agent's h samples are i.i.d. over its
                // neighborhood, so its count vector is Multinomial(h, q_loc)
                // with q_loc_j = Σ_σ (local_σ/deg)·N_σj. The law differs per
                // agent, so there is no round-shared cached CdfTable — the
                // multinomial chain is drawn directly.
                // Per-chunk scratch, reused across the agent loop below.
                let mut q = vec![0.0f64; self.d];
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    let nbrs = topo.neighbors(agent);
                    local.fill(0);
                    for &j in nbrs {
                        local[displays[j as usize]] += 1;
                    }
                    let deg = nbrs.len() as f64;
                    q.fill(0.0);
                    for (sigma, &c) in local.iter().enumerate() {
                        if c > 0 {
                            let w = c as f64 / deg;
                            for (qj, &row_j) in q.iter_mut().zip(&self.rows[sigma]) {
                                *qj += w * row_j;
                            }
                        }
                    }
                    normalize_law(&mut q)
                        // xtask-allow: unwrap (infallible by construction:
                        // every built topology has minimum degree ≥ 1, so
                        // the local histogram is nonzero)
                        .expect("nonempty neighborhood yields a nonzero local law");
                    let base = k * self.d;
                    multinomial::sample_into(&mut rng, h as u64, &q, &mut out[base..base + self.d]);
                }
            }
            SamplingMode::WithoutReplacement => {
                // A uniform h-subset of the neighborhood: the sampled
                // displays are multivariate hypergeometric in the *local*
                // histogram, then pass through the noise rows per symbol.
                // Per-chunk scratch, reused across the agent loop below.
                let mut sampled = vec![0u64; self.d];
                // Per-chunk scratch, reused across the agent loop below.
                let mut observed = vec![0u64; self.d];
                for (k, agent) in range.enumerate() {
                    let mut rng = streams.rng(agent, StreamStage::Observe);
                    let nbrs = topo.neighbors(agent);
                    local.fill(0);
                    for &j in nbrs {
                        local[displays[j as usize]] += 1;
                    }
                    let base = k * self.d;
                    hypergeometric::sample_multivariate_into(
                        &mut rng,
                        &local,
                        h as u64,
                        &mut sampled,
                    );
                    #[allow(clippy::needless_range_loop)]
                    for sigma in 0..self.d {
                        let k_sigma = sampled[sigma];
                        if k_sigma == 0 {
                            continue;
                        }
                        multinomial::sample_into(
                            &mut rng,
                            k_sigma,
                            &self.rows[sigma],
                            &mut observed,
                        );
                        for (slot, c) in out[base..base + self.d].iter_mut().zip(&observed) {
                            *slot += c;
                        }
                    }
                }
            }
        }
    }

    fn fill_aggregated(&self, displays: &[usize], h: usize, rng: &mut StreamRng, out: &mut [u64]) {
        let n = displays.len();
        // Histogram of currently displayed symbols.
        let mut disp_counts = vec![0u64; self.d];
        for &s in displays {
            assert!(s < self.d, "displayed symbol {s} out of range {}", self.d);
            disp_counts[s] += 1;
        }
        let probs: Vec<f64> = disp_counts.iter().map(|&c| c as f64 / n as f64).collect();
        let mut sampled = vec![0u64; self.d];
        let mut observed = vec![0u64; self.d];
        for agent in 0..n {
            let base = agent * self.d;
            // How many of this agent's h samples landed on each displayed
            // symbol: multinomial with replacement, multivariate
            // hypergeometric without.
            match self.mode {
                SamplingMode::WithReplacement => {
                    multinomial::sample_into(rng, h as u64, &probs, &mut sampled);
                }
                SamplingMode::WithoutReplacement => {
                    hypergeometric::sample_multivariate_into(
                        rng,
                        &disp_counts,
                        h as u64,
                        &mut sampled,
                    );
                }
            }
            // Push each group through the noise row. (Index loop: σ names
            // the displayed symbol, used for both lookups.)
            #[allow(clippy::needless_range_loop)]
            for sigma in 0..self.d {
                let k = sampled[sigma];
                if k == 0 {
                    continue;
                }
                multinomial::sample_into(rng, k, &self.rows[sigma], &mut observed);
                for (slot, c) in out[base..base + self.d].iter_mut().zip(&observed) {
                    *slot += c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn counts_for(
        kind: ChannelKind,
        noise: &NoiseMatrix,
        displays: &[usize],
        h: usize,
        seed: u64,
    ) -> Vec<u64> {
        let channel = Channel::new(noise, kind);
        let mut rng = StreamRng::seed_from_u64(seed);
        let mut out = vec![0u64; displays.len() * noise.dim()];
        channel.fill_observations(displays, h, &mut rng, &mut out);
        out
    }

    #[test]
    fn noiseless_aggregated_counts_sum_to_h() {
        let noise = NoiseMatrix::noiseless(2);
        let displays = vec![0, 1, 1, 0, 1];
        let out = counts_for(ChannelKind::Aggregated, &noise, &displays, 9, 3);
        for agent in 0..5 {
            let total: u64 = out[agent * 2..agent * 2 + 2].iter().sum();
            assert_eq!(total, 9);
        }
    }

    #[test]
    fn noiseless_exact_counts_sum_to_h() {
        let noise = NoiseMatrix::noiseless(2);
        let displays = vec![0, 1, 1];
        let out = counts_for(ChannelKind::Exact, &noise, &displays, 7, 4);
        for agent in 0..3 {
            let total: u64 = out[agent * 2..agent * 2 + 2].iter().sum();
            assert_eq!(total, 7);
        }
    }

    #[test]
    fn uniform_displays_noiseless_gives_deterministic_output() {
        // Everyone displays symbol 1, no noise: every observation is 1.
        let noise = NoiseMatrix::noiseless(3);
        let displays = vec![1; 10];
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let out = counts_for(kind, &noise, &displays, 4, 5);
            for agent in 0..10 {
                assert_eq!(&out[agent * 3..agent * 3 + 3], &[0, 4, 0]);
            }
        }
    }

    #[test]
    fn fully_noisy_channel_ignores_displays() {
        // δ = 1/2 on binary alphabet: observations are fair coins no matter
        // what is displayed. Check empirical frequency.
        let noise = NoiseMatrix::uniform(2, 0.5).unwrap();
        let displays = vec![1; 200]; // everyone displays 1
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let out = counts_for(kind, &noise, &displays, 50, 6);
            let ones: u64 = (0..200).map(|a| out[a * 2 + 1]).sum();
            let total = 200 * 50;
            let frac = ones as f64 / total as f64;
            assert!((frac - 0.5).abs() < 0.02, "{kind:?}: fraction {frac}");
        }
    }

    /// The central guarantee: exact and aggregated channels produce the
    /// same distribution. We compare per-symbol observation frequencies
    /// over many rounds on an asymmetric configuration.
    #[test]
    fn exact_and_aggregated_agree_in_distribution() {
        let noise = NoiseMatrix::from_rows(vec![vec![0.8, 0.2], vec![0.1, 0.9]]).unwrap();
        // 30% display 1.
        let displays: Vec<usize> = (0..100).map(|i| usize::from(i % 10 < 3)).collect();
        let h = 8;
        let reps = 300;
        let mut totals = [[0u64; 2]; 2]; // [kind][symbol]
        for (ki, kind) in [ChannelKind::Exact, ChannelKind::Aggregated]
            .iter()
            .enumerate()
        {
            let channel = Channel::new(&noise, *kind);
            let mut rng = StreamRng::seed_from_u64(99 + ki as u64);
            let mut out = vec![0u64; displays.len() * 2];
            for _ in 0..reps {
                channel.fill_observations(&displays, h, &mut rng, &mut out);
                for agent in 0..displays.len() {
                    totals[ki][0] += out[agent * 2];
                    totals[ki][1] += out[agent * 2 + 1];
                }
            }
        }
        // Expected P(observe 1) = 0.3·0.9 + 0.7·0.2 = 0.41.
        let total_obs = (100 * h * reps) as f64;
        for (ki, t) in totals.iter().enumerate() {
            let frac = t[1] as f64 / total_obs;
            assert!((frac - 0.41).abs() < 0.01, "kind {ki}: fraction {frac}");
        }
        // And the two kinds agree with each other tightly.
        let f_exact = totals[0][1] as f64 / total_obs;
        let f_aggr = totals[1][1] as f64 / total_obs;
        assert!((f_exact - f_aggr).abs() < 0.01);
    }

    #[test]
    fn observe_one_follows_noise_row() {
        let noise = NoiseMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.3, 0.7]]).unwrap();
        let channel = Channel::new(&noise, ChannelKind::Exact);
        let mut rng = StreamRng::seed_from_u64(11);
        // Row 0 is deterministic.
        for _ in 0..50 {
            assert_eq!(channel.observe_one(&mut rng, 0), 0);
        }
        // Row 1 is 70% ones.
        let mut ones = 0;
        let trials = 20_000;
        for _ in 0..trials {
            ones += channel.observe_one(&mut rng, 1);
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.7).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn wrong_buffer_size_panics() {
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let mut rng = StreamRng::seed_from_u64(0);
        let mut out = vec![0u64; 3];
        channel.fill_observations(&[0, 1], 1, &mut rng, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_display_symbol_panics() {
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let mut rng = StreamRng::seed_from_u64(0);
        let mut out = vec![0u64; 4];
        channel.fill_observations(&[0, 2], 1, &mut rng, &mut out);
    }

    #[test]
    fn without_replacement_h_equals_n_sees_everyone_exactly_once() {
        // δ = 0, h = n, no replacement: every agent's counts equal the
        // exact display histogram — deterministically.
        let noise = NoiseMatrix::noiseless(2);
        let displays = vec![0, 1, 1, 0, 1, 1, 0, 1]; // 3 zeros, 5 ones
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::with_sampling(&noise, kind, SamplingMode::WithoutReplacement);
            let mut rng = StreamRng::seed_from_u64(7);
            let mut out = vec![0u64; displays.len() * 2];
            channel.fill_observations(&displays, displays.len(), &mut rng, &mut out);
            for agent in 0..displays.len() {
                assert_eq!(&out[agent * 2..agent * 2 + 2], &[3, 5], "{kind:?}");
            }
        }
    }

    #[test]
    fn without_replacement_partial_draw_matches_marginals() {
        // 40% display 1; draw h = 10 of 50 without replacement: observed-1
        // frequency must match 0.4·(1−δ) + 0.6·δ.
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let displays: Vec<usize> = (0..50).map(|i| usize::from(i % 5 < 2)).collect();
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::with_sampling(&noise, kind, SamplingMode::WithoutReplacement);
            let mut rng = StreamRng::seed_from_u64(8);
            let mut out = vec![0u64; 50 * 2];
            let mut ones = 0u64;
            let reps = 400;
            for _ in 0..reps {
                channel.fill_observations(&displays, 10, &mut rng, &mut out);
                ones += (0..50).map(|a| out[a * 2 + 1]).sum::<u64>();
            }
            let frac = ones as f64 / (50 * 10 * reps) as f64;
            let expect = 0.4 * 0.9 + 0.6 * 0.1;
            assert!((frac - expect).abs() < 0.01, "{kind:?}: {frac} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn without_replacement_rejects_oversampling() {
        let noise = NoiseMatrix::noiseless(2);
        let channel =
            Channel::with_sampling(&noise, ChannelKind::Exact, SamplingMode::WithoutReplacement);
        let mut rng = StreamRng::seed_from_u64(0);
        let mut out = vec![0u64; 4];
        channel.fill_observations(&[0, 1], 3, &mut rng, &mut out);
    }

    fn chunk_counts_for(
        channel: &Channel,
        displays: &[usize],
        h: usize,
        seed: u64,
        chunk: usize,
    ) -> Vec<u64> {
        let streams = RoundStreams::new(seed, 0);
        let ctx = channel.begin_round(displays, h);
        let d = channel.alphabet_size();
        let mut out = vec![0u64; displays.len() * d];
        let mut start = 0;
        while start < displays.len() {
            let end = (start + chunk).min(displays.len());
            channel.fill_observations_chunk(
                &ctx,
                displays,
                h,
                start..end,
                &streams,
                &mut out[start * d..end * d],
            );
            start = end;
        }
        out
    }

    #[test]
    fn chunked_fill_is_chunk_size_invariant() {
        // Full matrix: alphabet sizes 2, 3 and 4 (the multinomial chain and
        // hypergeometric splitter branch on the tail length, so d = 2 alone
        // does not cover them) under both kinds and both sampling modes.
        // n = 31 with chunks [1, 4, 7, 30] exercises uneven chunk
        // boundaries, including WithoutReplacement mid-permutation splits.
        for d in [2usize, 3, 4] {
            let noise = NoiseMatrix::uniform(d, 0.15).unwrap();
            let displays: Vec<usize> = (0..31).map(|i| i % d).collect();
            for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
                for mode in [
                    SamplingMode::WithReplacement,
                    SamplingMode::WithoutReplacement,
                ] {
                    let channel = Channel::with_sampling(&noise, kind, mode);
                    let whole = chunk_counts_for(&channel, &displays, 9, 5, 31);
                    for chunk in [1, 4, 7, 30] {
                        let pieces = chunk_counts_for(&channel, &displays, 9, 5, chunk);
                        assert_eq!(whole, pieces, "d={d} {kind:?} {mode:?} chunk={chunk}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_law_is_a_typed_error() {
        // Regression: an all-zero law used to pass through normalize_law
        // untouched and feed CdfTable::new_unchecked(h, 0.0) — a silently
        // degenerate sampler. It must be a BadHistogram error now.
        let mut q = vec![0.0f64; 4];
        let err = normalize_law(&mut q).expect_err("zero law");
        assert!(matches!(err, EngineError::BadHistogram { .. }));
        assert!(err.to_string().contains("sums to zero"));
        // Clamping makes an all-negative law the same case.
        let mut q = vec![-1e-18f64; 3];
        assert!(normalize_law(&mut q).is_err());
        // A healthy law still normalizes in place.
        let mut q = vec![0.5f64, 0.25, 0.25 + 1e-16];
        normalize_law(&mut q).expect("healthy law");
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    fn topo_chunk_counts_for(
        channel: &Channel,
        displays: &[usize],
        topo: &crate::topology::Topology,
        h: usize,
        seed: u64,
        chunk: usize,
    ) -> Vec<u64> {
        let streams = RoundStreams::new(seed, 0);
        let d = channel.alphabet_size();
        let mut out = vec![0u64; displays.len() * d];
        let mut start = 0;
        while start < displays.len() {
            let end = (start + chunk).min(displays.len());
            channel.fill_observations_topo_chunk(
                displays,
                topo,
                h,
                start..end,
                &streams,
                &mut out[start * d..end * d],
            );
            start = end;
        }
        out
    }

    #[test]
    fn topo_chunked_fill_is_chunk_size_invariant() {
        use crate::topology::{Topology, TopologySpec};
        let specs = [
            TopologySpec::Ring { k: 3 },
            TopologySpec::RandomRegular { d: 6 },
        ];
        for d in [2usize, 3] {
            let noise = NoiseMatrix::uniform(d, 0.15).unwrap();
            let displays: Vec<usize> = (0..31).map(|i| i % d).collect();
            for spec in specs {
                let topo = Topology::build(spec, 31, 77).expect("builds");
                for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
                    for mode in [
                        SamplingMode::WithReplacement,
                        SamplingMode::WithoutReplacement,
                    ] {
                        let channel = Channel::with_sampling(&noise, kind, mode);
                        // h = 5 ≤ min degree 6, legal without replacement.
                        let whole = topo_chunk_counts_for(&channel, &displays, &topo, 5, 5, 31);
                        for chunk in [1, 4, 7, 30] {
                            let pieces =
                                topo_chunk_counts_for(&channel, &displays, &topo, 5, 5, chunk);
                            assert_eq!(
                                whole,
                                pieces,
                                "{} d={d} {kind:?} {mode:?} chunk={chunk}",
                                spec.label()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn topo_noiseless_without_replacement_sees_the_whole_neighborhood() {
        // δ = 0, h = degree, no replacement: each agent's counts are
        // exactly its neighborhood's display histogram — deterministically,
        // for both channel kinds.
        use crate::topology::{Topology, TopologySpec};
        let noise = NoiseMatrix::noiseless(2);
        let n = 12;
        let topo = Topology::build(TopologySpec::Ring { k: 2 }, n, 1).expect("builds");
        let displays: Vec<usize> = (0..n).map(|i| usize::from(i % 3 == 0)).collect();
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::with_sampling(&noise, kind, SamplingMode::WithoutReplacement);
            let out = topo_chunk_counts_for(&channel, &displays, &topo, 4, 9, 5);
            for agent in 0..n {
                let ones: u64 = topo
                    .neighbors(agent)
                    .iter()
                    .map(|&j| displays[j as usize] as u64)
                    .sum();
                assert_eq!(
                    &out[agent * 2..agent * 2 + 2],
                    &[4 - ones, ones],
                    "{kind:?} agent {agent}"
                );
            }
        }
    }

    #[test]
    fn topo_with_replacement_matches_neighborhood_marginals() {
        // Ring of degree 4 under δ = 0.1: agent i's P(observe 1) is
        // loc_i·0.9 + (1−loc_i)·0.1 with loc_i its neighborhood's display-1
        // fraction. Check the empirical frequency pooled over agents whose
        // neighborhoods are all-ones (loc = 1).
        use crate::topology::{Topology, TopologySpec};
        let noise = NoiseMatrix::uniform(2, 0.1).unwrap();
        let n = 40;
        let topo = Topology::build(TopologySpec::Ring { k: 2 }, n, 1).expect("builds");
        // First half displays 1, second half 0 — agents deep in the first
        // half have all-ones neighborhoods.
        let displays: Vec<usize> = (0..n).map(|i| usize::from(i < n / 2)).collect();
        let deep: Vec<usize> = (2..n / 2 - 2).collect();
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::new(&noise, kind);
            let h = 16;
            let reps = 200u64;
            let mut ones = 0u64;
            for round in 0..reps {
                let streams = RoundStreams::new(4242, round);
                let mut out = vec![0u64; n * 2];
                channel.fill_observations_topo_chunk(&displays, &topo, h, 0..n, &streams, &mut out);
                ones += deep.iter().map(|&a| out[a * 2 + 1]).sum::<u64>();
            }
            let frac = ones as f64 / (deep.len() as u64 * h as u64 * reps) as f64;
            assert!((frac - 0.9).abs() < 0.01, "{kind:?}: fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "unrestricted sampling path")]
    fn topo_chunk_rejects_complete_graph() {
        use crate::topology::{Topology, TopologySpec};
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let topo = Topology::build(TopologySpec::Complete, 4, 0).expect("builds");
        let streams = RoundStreams::new(0, 0);
        let mut out = vec![0u64; 8];
        channel.fill_observations_topo_chunk(&[0, 1, 0, 1], &topo, 1, 0..4, &streams, &mut out);
    }

    #[test]
    #[should_panic(expected = "minimum degree")]
    fn topo_chunk_rejects_oversampling_the_neighborhood() {
        use crate::topology::{Topology, TopologySpec};
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::with_sampling(
            &noise,
            ChannelKind::Aggregated,
            SamplingMode::WithoutReplacement,
        );
        let topo = Topology::build(TopologySpec::Ring { k: 1 }, 6, 0).expect("builds");
        let streams = RoundStreams::new(0, 0);
        let mut out = vec![0u64; 12];
        // h = 3 > degree 2.
        channel.fill_observations_topo_chunk(
            &[0, 1, 0, 1, 0, 1],
            &topo,
            3,
            0..6,
            &streams,
            &mut out,
        );
    }

    #[test]
    fn chunked_fill_conserves_h_per_agent() {
        let noise = NoiseMatrix::uniform(2, 0.3).unwrap();
        let displays: Vec<usize> = (0..20).map(|i| usize::from(i % 2 == 0)).collect();
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::new(&noise, kind);
            let out = chunk_counts_for(&channel, &displays, 6, 9, 8);
            for agent in 0..displays.len() {
                let total: u64 = out[agent * 2..agent * 2 + 2].iter().sum();
                assert_eq!(total, 6, "{kind:?} agent {agent}");
            }
        }
    }

    #[test]
    fn chunked_fill_matches_marginal_distribution() {
        // Same statistical check as the sequential channel: P(observe 1) =
        // 0.3·0.9 + 0.7·0.2 = 0.41 under this asymmetric matrix.
        let noise = NoiseMatrix::from_rows(vec![vec![0.8, 0.2], vec![0.1, 0.9]]).unwrap();
        let displays: Vec<usize> = (0..100).map(|i| usize::from(i % 10 < 3)).collect();
        let h = 8;
        let reps = 300;
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::new(&noise, kind);
            let mut ones = 0u64;
            for round in 0..reps {
                let streams = RoundStreams::new(123, round);
                let ctx = channel.begin_round(&displays, h);
                let mut out = vec![0u64; displays.len() * 2];
                channel.fill_observations_chunk(&ctx, &displays, h, 0..100, &streams, &mut out);
                ones += (0..100).map(|a| out[a * 2 + 1]).sum::<u64>();
            }
            let frac = ones as f64 / (100 * h as u64 * reps) as f64;
            assert!((frac - 0.41).abs() < 0.01, "{kind:?}: fraction {frac}");
        }
    }

    #[test]
    fn chunked_without_replacement_h_equals_n_sees_everyone() {
        let noise = NoiseMatrix::noiseless(2);
        let displays = vec![0, 1, 1, 0, 1, 1, 0, 1]; // 3 zeros, 5 ones
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::with_sampling(&noise, kind, SamplingMode::WithoutReplacement);
            let out = chunk_counts_for(&channel, &displays, displays.len(), 3, 3);
            for agent in 0..displays.len() {
                assert_eq!(&out[agent * 2..agent * 2 + 2], &[3, 5], "{kind:?}");
            }
        }
    }

    #[test]
    fn begin_round_from_counts_matches_begin_round() {
        // The histogram-input entry point (fed by packed popcounts) must
        // produce a context whose chunk fills are bit-identical to the
        // display-vector entry point's.
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let displays: Vec<usize> = (0..40).map(|i| usize::from(i % 4 == 1)).collect();
        for mode in [
            SamplingMode::WithReplacement,
            SamplingMode::WithoutReplacement,
        ] {
            let channel = Channel::with_sampling(&noise, ChannelKind::Aggregated, mode);
            let streams = RoundStreams::new(77, 3);
            let from_displays = channel.begin_round(&displays, 12);
            let from_counts = channel
                .begin_round_from_counts(vec![30, 10], 12)
                .expect("valid histogram");
            let mut a = vec![0u64; 40 * 2];
            let mut b = vec![0u64; 40 * 2];
            channel.fill_observations_chunk(&from_displays, &displays, 12, 0..40, &streams, &mut a);
            channel.fill_observations_chunk(&from_counts, &displays, 12, 0..40, &streams, &mut b);
            assert_eq!(a, b, "{mode:?}");
        }
    }

    #[test]
    fn begin_round_from_counts_typed_errors() {
        // The histogram seam is reachable from misconfigured sweep specs,
        // so its preconditions are typed errors, not panics.
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        assert!(matches!(
            channel.begin_round_from_counts(vec![1, 2, 3], 1),
            Err(EngineError::BadHistogram { .. })
        ));
        assert!(matches!(
            channel.begin_round_from_counts(vec![0, 0], 1),
            Err(EngineError::BadHistogram { .. })
        ));
        let without = Channel::with_sampling(
            &noise,
            ChannelKind::Aggregated,
            SamplingMode::WithoutReplacement,
        );
        assert!(matches!(
            without.begin_round_from_counts(vec![3, 2], 6),
            Err(EngineError::BadHistogram { .. })
        ));
        // h = n without replacement is fine.
        assert!(without.begin_round_from_counts(vec![3, 2], 5).is_ok());
    }

    #[test]
    fn collapsed_law_is_clamped_and_renormalized() {
        // Adversarial histogram: many symbols with wildly uneven counts so
        // the accumulation Σ_σ (c_σ/n)·N_σj maximizes float drift. Every
        // entry of the collapsed law must come out in [0, 1] and the vector
        // must sum to exactly 1 (the mean-field multinomial path consumes
        // all of it, not just q[0]).
        let d = 7;
        let rows: Vec<Vec<f64>> = (0..d)
            .map(|s| {
                let mut row = vec![0.1 / (d as f64 - 1.0); d];
                row[s] = 0.9;
                // Deliberately off-by-drift normalization.
                let total: f64 = row.iter().sum();
                row.iter_mut().for_each(|x| *x /= total);
                row
            })
            .collect();
        let noise = NoiseMatrix::from_rows(rows).unwrap();
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let counts = vec![1u64, 0, 999_999_937, 3, 70_001, 1, 123_456_789];
        let ctx = channel
            .begin_round_from_counts(counts, 16)
            .expect("valid histogram");
        let q = ctx.obs_law();
        assert_eq!(q.len(), d);
        for &qj in q {
            assert!((0.0..=1.0).contains(&qj), "law entry {qj} out of range");
        }
        let total: f64 = q.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-15,
            "law sums to {total}, want exactly 1"
        );
    }

    #[test]
    #[should_panic(expected = "different h")]
    fn chunk_fill_rejects_mismatched_h() {
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let streams = RoundStreams::new(0, 0);
        let ctx = channel.begin_round(&[0, 1], 4);
        let mut out = vec![0u64; 4];
        channel.fill_observations_chunk(&ctx, &[0, 1], 5, 0..2, &streams, &mut out);
    }

    /// The collapse identity, checked jointly rather than marginally: the
    /// collapsed chunk path and the two-stage sequential path must induce
    /// the same distribution over an agent's full count *vector*. We
    /// compare empirical frequencies of the complete (o₀, o₁, o₂) outcome
    /// on a 3-symbol alphabet with an asymmetric noise matrix.
    #[test]
    fn collapsed_chunk_matches_two_stage_jointly() {
        let noise = NoiseMatrix::from_rows(vec![
            vec![0.7, 0.2, 0.1],
            vec![0.05, 0.9, 0.05],
            vec![0.3, 0.3, 0.4],
        ])
        .unwrap();
        let displays: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let h = 6;
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let reps = 400u64;
        // Outcome key: o₀·(h+1) + o₁ (o₂ is determined by the sum).
        let mut seq_freq = vec![0u64; (h + 1) * (h + 1)];
        let mut chunk_freq = vec![0u64; (h + 1) * (h + 1)];
        let mut rng = StreamRng::seed_from_u64(55);
        let mut out = vec![0u64; displays.len() * 3];
        for round in 0..reps {
            channel.fill_observations(&displays, h, &mut rng, &mut out);
            for a in 0..displays.len() {
                seq_freq[out[a * 3] as usize * (h + 1) + out[a * 3 + 1] as usize] += 1;
            }
            let streams = RoundStreams::new(555, round);
            let ctx = channel.begin_round(&displays, h);
            channel.fill_observations_chunk(&ctx, &displays, h, 0..30, &streams, &mut out);
            for a in 0..displays.len() {
                chunk_freq[out[a * 3] as usize * (h + 1) + out[a * 3 + 1] as usize] += 1;
            }
        }
        let total = (reps * displays.len() as u64) as f64;
        for (key, (&s, &c)) in seq_freq.iter().zip(&chunk_freq).enumerate() {
            let fs = s as f64 / total;
            let fc = c as f64 / total;
            // 12000 samples per path; 3σ of a frequency is ≤ 3·0.5/√N ≈ 0.014.
            assert!(
                (fs - fc).abs() < 0.02,
                "outcome {key}: sequential {fs} vs collapsed {fc}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn begin_round_rejects_bad_symbol() {
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let _ = channel.begin_round(&[0, 2], 1);
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn begin_round_rejects_oversampling() {
        let noise = NoiseMatrix::noiseless(2);
        let channel =
            Channel::with_sampling(&noise, ChannelKind::Exact, SamplingMode::WithoutReplacement);
        let _ = channel.begin_round(&[0, 1], 3);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn chunked_fill_rejects_bad_buffer() {
        let noise = NoiseMatrix::noiseless(2);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let streams = RoundStreams::new(0, 0);
        let ctx = channel.begin_round(&[0, 1], 1);
        let mut out = vec![0u64; 3];
        channel.fill_observations_chunk(&ctx, &[0, 1], 1, 0..2, &streams, &mut out);
    }

    #[test]
    fn accessors() {
        let noise = NoiseMatrix::uniform(4, 0.1).unwrap();
        let c = Channel::new(&noise, ChannelKind::Exact);
        assert_eq!(c.alphabet_size(), 4);
        assert_eq!(c.kind(), ChannelKind::Exact);
        assert_eq!(c.sampling_mode(), SamplingMode::WithReplacement);
        assert_eq!(ChannelKind::default(), ChannelKind::Aggregated);
        assert_eq!(SamplingMode::default(), SamplingMode::WithReplacement);
    }
}
