//! Binary opinions, the values agents are trying to agree on.

use std::fmt;
use std::ops::Not;

/// A binary opinion (`Y ∈ {0, 1}` in the paper).
///
/// # Example
///
/// ```
/// use np_engine::opinion::Opinion;
///
/// let y = Opinion::One;
/// assert_eq!(y.as_index(), 1);
/// assert_eq!(!y, Opinion::Zero);
/// assert_eq!(Opinion::from_index(0), Some(Opinion::Zero));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opinion {
    /// Opinion 0.
    Zero,
    /// Opinion 1.
    One,
}

impl Opinion {
    /// Both opinions, in index order.
    pub const ALL: [Opinion; 2] = [Opinion::Zero, Opinion::One];

    /// The opinion as a symbol index (`Zero → 0`, `One → 1`).
    pub fn as_index(self) -> usize {
        match self {
            Opinion::Zero => 0,
            Opinion::One => 1,
        }
    }

    /// The opinion as a single byte (`Zero → 0`, `One → 1`), for
    /// byte-stable encoders that must not narrow through `as` casts.
    pub fn as_byte(self) -> u8 {
        match self {
            Opinion::Zero => 0,
            Opinion::One => 1,
        }
    }

    /// Parses a symbol index; returns `None` for indices other than 0/1.
    pub fn from_index(i: usize) -> Option<Opinion> {
        match i {
            0 => Some(Opinion::Zero),
            1 => Some(Opinion::One),
            _ => None,
        }
    }

    /// `true → One`, `false → Zero`.
    pub fn from_bool(b: bool) -> Opinion {
        if b {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }

    /// The opinion as a boolean (`One → true`).
    pub fn as_bool(self) -> bool {
        self == Opinion::One
    }

    /// The opposite opinion.
    pub fn flipped(self) -> Opinion {
        !self
    }
}

impl Not for Opinion {
    type Output = Opinion;

    fn not(self) -> Opinion {
        match self {
            Opinion::Zero => Opinion::One,
            Opinion::One => Opinion::Zero,
        }
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_index())
    }
}

impl From<bool> for Opinion {
    fn from(b: bool) -> Opinion {
        Opinion::from_bool(b)
    }
}

impl From<Opinion> for usize {
    fn from(o: Opinion) -> usize {
        o.as_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for o in Opinion::ALL {
            assert_eq!(Opinion::from_index(o.as_index()), Some(o));
        }
        assert_eq!(Opinion::from_index(2), None);
    }

    #[test]
    fn bool_roundtrip() {
        assert_eq!(Opinion::from_bool(true), Opinion::One);
        assert_eq!(Opinion::from_bool(false), Opinion::Zero);
        assert!(Opinion::One.as_bool());
        assert!(!Opinion::Zero.as_bool());
        assert_eq!(Opinion::from(true), Opinion::One);
        assert_eq!(usize::from(Opinion::One), 1);
    }

    #[test]
    fn negation() {
        assert_eq!(!Opinion::Zero, Opinion::One);
        assert_eq!(Opinion::One.flipped(), Opinion::Zero);
        for o in Opinion::ALL {
            assert_eq!(!!o, o);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Opinion::Zero.to_string(), "0");
        assert_eq!(Opinion::One.to_string(), "1");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(Opinion::Zero < Opinion::One);
    }
}
