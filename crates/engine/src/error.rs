use std::fmt;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The population configuration is inconsistent (e.g. more sources than
    /// agents, zero agents, zero sample size).
    BadPopulation {
        /// Description of the violation.
        detail: String,
    },
    /// The number of sources preferring 0 equals the number preferring 1:
    /// there is no strict majority, so "correct opinion" is undefined
    /// (the paper requires bias `s ≥ 1`).
    TiedSources {
        /// The common count `s0 = s1`.
        count: usize,
    },
    /// The noise matrix's alphabet size does not match the protocol's.
    AlphabetMismatch {
        /// Alphabet size expected by the protocol.
        protocol: usize,
        /// Alphabet size of the supplied noise matrix.
        noise: usize,
    },
    /// A [`crate::faults::FaultPlan`] is inconsistent with the world it
    /// was attached to (past rounds, out-of-range fractions, mismatched
    /// noise dimensions, …).
    BadFaultPlan {
        /// Description of the violation.
        detail: String,
    },
    /// An `np-snap/v1` snapshot could not be decoded: truncated bytes,
    /// wrong magic or state tag, or contents inconsistent with the
    /// protocol being restored.
    BadSnapshot {
        /// Description of the violation.
        detail: String,
    },
    /// A display histogram handed to the channel is unusable: wrong
    /// length for the alphabet, all-zero (nobody to observe), or too small
    /// to draw `h` distinct agents without replacement. Reachable from a
    /// misconfigured sweep spec, so it is a typed error at the public
    /// seam rather than a panic.
    BadHistogram {
        /// Description of the violation.
        detail: String,
    },
    /// A [`crate::topology::TopologySpec`] is malformed or incompatible
    /// with the population it was asked to cover: unparsable spec string,
    /// out-of-range parameters (ring span too wide, degree ≥ n, power-law
    /// exponent ≤ 1), or a graph whose minimum degree cannot support the
    /// requested sampling (h neighbors without replacement).
    BadTopology {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadPopulation { detail } => {
                write!(f, "bad population configuration: {detail}")
            }
            EngineError::TiedSources { count } => {
                write!(
                    f,
                    "tied sources (s0 = s1 = {count}): no correct opinion exists"
                )
            }
            EngineError::AlphabetMismatch { protocol, noise } => write!(
                f,
                "alphabet mismatch: protocol uses {protocol} symbols, noise matrix has {noise}"
            ),
            EngineError::BadFaultPlan { detail } => {
                write!(f, "bad fault plan: {detail}")
            }
            EngineError::BadSnapshot { detail } => {
                write!(f, "bad snapshot: {detail}")
            }
            EngineError::BadHistogram { detail } => {
                write!(f, "bad display histogram: {detail}")
            }
            EngineError::BadTopology { detail } => {
                write!(f, "bad topology: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for e in [
            EngineError::BadPopulation { detail: "x".into() },
            EngineError::TiedSources { count: 2 },
            EngineError::AlphabetMismatch {
                protocol: 2,
                noise: 4,
            },
            EngineError::BadFaultPlan { detail: "y".into() },
            EngineError::BadSnapshot { detail: "z".into() },
            EngineError::BadHistogram { detail: "w".into() },
            EngineError::BadTopology { detail: "t".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
