//! The protocol abstraction: what a spreading algorithm must provide to run
//! on the engine.
//!
//! Two levels exist:
//!
//! * The **scalar** level — [`Protocol`] / [`AgentState`] — one state
//!   machine per agent, the natural way to write a protocol. Each round the
//!   world calls [`AgentState::display`] on every agent, routes the
//!   displayed symbols through the noisy channel, and then calls
//!   [`AgentState::update`] with the agent's observation counts.
//!
//! * The **columnar** level — [`ColumnarProtocol`] / [`ColumnarState`] —
//!   one struct-of-arrays state for the whole population, processed in
//!   agent *chunks*. This is what [`crate::world::World`] actually runs:
//!   chunks go to scoped threads, and per-agent RNG streams
//!   ([`crate::streams`]) keep the result bit-identical for any thread
//!   count or chunk size.
//!
//! Every scalar protocol is automatically a columnar one through the
//! blanket adapter (`impl<P: Protocol> ColumnarProtocol for P`), whose
//! state is a [`ScalarState`] (a plain `Vec` of agents chunked by
//! sub-slices). Hand-written columnar ports — new types, since the blanket
//! impl owns the trait for every `Protocol` — replicate the scalar draw
//! sequence against the same streams and therefore agree bit-for-bit with
//! their scalar counterparts (tested in the `noisy-pull` crate).
//!
//! # Why observations are count vectors
//!
//! In the noisy PULL model agents are anonymous: an observation carries no
//! sender identity, only a (noisy) symbol. Every algorithm in the paper —
//! SF's counters, SSF's majority-over-memory, the boosting majority — is a
//! symmetric function of the received *multiset* of symbols, and a multiset
//! over `Σ` is exactly a count vector of length `|Σ|`. Delivering counts is
//! therefore lossless, and it is what allows the aggregated channel to skip
//! materializing individual messages.

use std::ops::Range;

use crate::streams::StreamRng;

use crate::metrics::MetricsSweep;
use crate::opinion::Opinion;
use crate::packed::PackedChunkMut;
use crate::population::{PopulationConfig, Role};
use crate::streams::{RoundStreams, StreamStage};

/// A spreading algorithm: a factory of per-agent state machines plus static
/// protocol metadata.
pub trait Protocol {
    /// The per-agent state machine type.
    type Agent: AgentState;

    /// Size of the communication alphabet `|Σ|` (2 for SF, 4 for SSF).
    fn alphabet_size(&self) -> usize;

    /// Creates the initial state for an agent with the given role.
    ///
    /// `rng` may be used for randomized initialization; the engine passes
    /// the agent's [`StreamStage::Init`] stream.
    fn init_agent(&self, role: Role, rng: &mut StreamRng) -> Self::Agent;
}

/// The per-agent, per-round behaviour of a protocol.
///
/// `Send + Sync` is required because the world shares agent state across
/// chunk workers; agent states are plain data, so the bounds are free.
pub trait AgentState: Send + Sync {
    /// The symbol (index into `Σ`) this agent displays this round.
    ///
    /// Called exactly once per round, *before* any observations are
    /// delivered, matching step 1 of the model. `rng` is the agent's
    /// [`StreamStage::Display`] stream for the round.
    fn display(&self, rng: &mut StreamRng) -> usize;

    /// Consumes this round's observations: `observed[σ]` is how many of the
    /// agent's `h` samples arrived (post-noise) as symbol `σ`. `rng` is the
    /// agent's [`StreamStage::Update`] stream for the round.
    fn update(&mut self, observed: &[u64], rng: &mut StreamRng);

    /// The agent's current opinion `Y ∈ {0, 1}`.
    fn opinion(&self) -> Opinion;

    /// A small integer naming the agent's current phase/stage, for
    /// observability only (stage-occupancy counts in
    /// [`crate::metrics::RoundMetrics`]). Protocols with phase structure
    /// override this (e.g. SF reports Listen₀ → Listen₁ → Boost(k) → Done);
    /// the default reports a single stage `0`. Must not consume randomness
    /// or mutate state.
    fn stage_id(&self) -> u32 {
        0
    }

    /// The agent's weak opinion `Y_w`, once formed — `None` before it
    /// exists or for protocols without one. Observability only; the
    /// default reports `None`.
    fn weak_opinion(&self) -> Option<Opinion> {
        None
    }

    /// Inverts this agent's source preference, if it has one — the
    /// "trend change" fault of [`crate::faults`] (the environment's
    /// ground truth flips mid-run). Returns `true` if a preference was
    /// flipped. The default is a no-op: protocols whose roles carry a
    /// preference opt in.
    fn flip_source_preference(&mut self) -> bool {
        false
    }
}

/// A spreading algorithm in columnar form: a factory for one
/// struct-of-arrays population state.
///
/// Implemented automatically for every [`Protocol`] (via [`ScalarState`]);
/// implement it directly on a *new* type to provide a hand-tuned columnar
/// port.
pub trait ColumnarProtocol {
    /// The whole-population state type.
    type State: ColumnarState;

    /// Size of the communication alphabet `|Σ|`.
    fn alphabet_size(&self) -> usize;

    /// Builds the initial population state. Implementations must draw each
    /// agent's initialization randomness from
    /// `streams.rng(id, StreamStage::Init)` so scalar and columnar forms of
    /// the same protocol initialize identically.
    fn init_state(&self, config: &PopulationConfig, streams: &RoundStreams) -> Self::State;
}

/// Whole-population protocol state, processable in agent chunks.
///
/// The world drives one round as: [`ColumnarState::display_chunk`] over
/// disjoint ranges (shared `&self`), then the channel fills observations,
/// then [`ColumnarState::step_chunk`] over the disjoint mutable views
/// produced by [`ColumnarState::chunks_mut`]. All randomness comes from the
/// per-agent streams passed in, never from shared state — that is the
/// whole-engine invariant making results independent of chunking.
pub trait ColumnarState: Send + Sync {
    /// A mutable view of one contiguous agent chunk, safe to hand to a
    /// worker thread.
    type ChunkMut<'a>: Send
    where
        Self: 'a;

    /// Number of agents.
    fn len(&self) -> usize;

    /// Returns `true` for an empty population (never built by the world;
    /// provided for completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the displayed symbols of agents `range` into `out` (indexed
    /// from the start of the range). Implementations needing display
    /// randomness must use `streams.rng(id, StreamStage::Display)` per
    /// agent.
    ///
    /// This is the *scalar seam*: the exact channel's literal sampling
    /// path and the equivalence tests consume it. The hot round loop
    /// displays through [`ColumnarState::display_chunk_packed`] instead.
    fn display_chunk(&self, range: Range<usize>, out: &mut [usize], streams: &RoundStreams);

    /// Writes the displayed symbols of agents `range` into a packed
    /// bit-plane chunk ([`crate::packed`]) — the representation the hot
    /// round loop runs on. `chunk` covers exactly the agents of `range`
    /// (`chunk.start() == range.start`, `chunk.len() == range.len()`);
    /// implementations must clear it first and must produce **the same
    /// symbols** as [`ColumnarState::display_chunk`] for the same streams
    /// — the packed-vs-scalar equivalence tests hold every implementation
    /// to that.
    ///
    /// The blanket scalar adapter routes through
    /// [`ColumnarState::display_chunk`] in 64-agent windows; hand-written
    /// columnar ports write bit planes directly.
    fn display_chunk_packed(
        &self,
        range: Range<usize>,
        chunk: &mut PackedChunkMut<'_>,
        streams: &RoundStreams,
    );

    /// Splits the population into disjoint mutable chunk views of
    /// `chunk_len` agents each (the last may be shorter), in agent order.
    fn chunks_mut(&mut self, chunk_len: usize) -> Vec<Self::ChunkMut<'_>>;

    /// Updates the agents of one chunk. `range` holds the global agent ids
    /// covered by `chunk`; `observed` is the flattened
    /// `range.len() × d` observation-count matrix for exactly those
    /// agents. Update randomness comes from
    /// `streams.rng(id, StreamStage::Update)` per agent.
    ///
    /// `awake`, when present, is the chunk-local sleep mask of the fault
    /// subsystem ([`crate::faults`]): agents with `awake[i] == false` are
    /// asleep this round — they displayed, but their update is skipped
    /// entirely (state untouched, no update randomness drawn). `None`
    /// means everyone is awake (the fault-free fast path).
    ///
    /// An associated function (no `&self`) so the world needs no protocol
    /// reference after initialization.
    fn step_chunk(
        chunk: &mut Self::ChunkMut<'_>,
        range: Range<usize>,
        observed: &[u64],
        d: usize,
        streams: &RoundStreams,
        awake: Option<&[bool]>,
    );

    /// Inverts the source preference of every agent that has one — the
    /// columnar form of [`AgentState::flip_source_preference`]. Returns
    /// how many preferences were flipped. The default is a no-op.
    fn flip_source_preferences(&mut self) -> usize {
        0
    }

    /// The current opinion of agent `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.len()`.
    fn opinion(&self, id: usize) -> Opinion;

    /// Number of agents currently holding `opinion`. The default scans
    /// [`ColumnarState::opinion`]; columnar ports may override with a
    /// column sweep.
    fn count_opinion(&self, opinion: Opinion) -> usize {
        (0..self.len())
            .filter(|&i| self.opinion(i) == opinion)
            .count()
    }

    /// The stage id of agent `id` — the columnar form of
    /// [`AgentState::stage_id`]. Observability only; the default reports a
    /// single stage `0`.
    ///
    /// # Panics
    ///
    /// May panic if `id >= self.len()`.
    fn stage_id(&self, _id: usize) -> u32 {
        0
    }

    /// The weak opinion of agent `id`, once formed — the columnar form of
    /// [`AgentState::weak_opinion`]. Observability only; the default
    /// reports `None`.
    ///
    /// # Panics
    ///
    /// May panic if `id >= self.len()`.
    fn weak_opinion(&self, _id: usize) -> Option<Opinion> {
        None
    }

    /// One observability sweep over the population: correct-opinion
    /// count, stage occupancy, and weak-opinion accuracy, all relative to
    /// `correct`. This is what [`crate::world::World`] collects into
    /// [`crate::metrics::RoundMetrics`] each observed round — the default
    /// walks the per-agent accessors; columnar ports override it with a
    /// single fused pass over their lanes. Overrides must be *value*-
    /// identical to the default (the run-summary artifacts are
    /// byte-compared), including the ascending-stage-id order.
    fn metrics_sweep(&self, correct: Opinion) -> MetricsSweep {
        let mut sweep = MetricsSweep::default();
        let mut stages: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for id in 0..self.len() {
            if self.opinion(id) == correct {
                sweep.correct += 1;
            }
            *stages.entry(self.stage_id(id)).or_insert(0) += 1;
            if let Some(weak) = self.weak_opinion(id) {
                sweep.weak_formed += 1;
                if weak == correct {
                    sweep.weak_correct += 1;
                }
            }
        }
        sweep.stages = stages.into_iter().collect();
        sweep
    }
}

/// The adapter state behind the blanket `Protocol → ColumnarProtocol`
/// impl: a plain vector of scalar agents, chunked by sub-slices.
#[derive(Debug, Clone)]
pub struct ScalarState<A> {
    agents: Vec<A>,
}

impl<A> ScalarState<A> {
    /// Read access to the underlying agents, in id order.
    pub fn agents(&self) -> &[A] {
        &self.agents
    }

    /// Mutable access to the underlying agents, in id order.
    pub fn agents_mut(&mut self) -> &mut [A] {
        &mut self.agents
    }

    /// Rebuilds a state from decoded agents (snapshot restore path).
    pub(crate) fn from_agents(agents: Vec<A>) -> Self {
        ScalarState { agents }
    }
}

impl<A: AgentState> ColumnarState for ScalarState<A> {
    type ChunkMut<'a>
        = &'a mut [A]
    where
        Self: 'a;

    fn len(&self) -> usize {
        self.agents.len()
    }

    fn display_chunk(&self, range: Range<usize>, out: &mut [usize], streams: &RoundStreams) {
        for (slot, id) in out.iter_mut().zip(range) {
            let mut rng = streams.rng(id, StreamStage::Display);
            *slot = self.agents[id].display(&mut rng);
        }
    }

    fn display_chunk_packed(
        &self,
        range: Range<usize>,
        chunk: &mut PackedChunkMut<'_>,
        streams: &RoundStreams,
    ) {
        debug_assert_eq!(chunk.start(), range.start);
        debug_assert_eq!(chunk.len(), range.len());
        chunk.clear();
        let d = chunk.alphabet_size();
        // Scalar agents produce symbols one at a time; pack through a
        // stack window so the alphabet invariant is checked with the
        // same global-agent-naming panic the scalar path raises.
        let mut window = [0usize; 64];
        let mut start = range.start;
        let mut local = 0;
        while start < range.end {
            let take = 64.min(range.end - start);
            let buf = &mut window[..take];
            self.display_chunk(start..start + take, buf, streams);
            crate::invariants::check_displays_chunk(start, buf, d);
            for (k, &s) in buf.iter().enumerate() {
                chunk.set(local + k, s);
            }
            start += take;
            local += take;
        }
    }

    fn chunks_mut(&mut self, chunk_len: usize) -> Vec<Self::ChunkMut<'_>> {
        self.agents.chunks_mut(chunk_len.max(1)).collect()
    }

    fn step_chunk(
        chunk: &mut Self::ChunkMut<'_>,
        range: Range<usize>,
        observed: &[u64],
        d: usize,
        streams: &RoundStreams,
        awake: Option<&[bool]>,
    ) {
        for (i, ((agent, id), obs)) in chunk
            .iter_mut()
            .zip(range)
            .zip(observed.chunks_exact(d))
            .enumerate()
        {
            if awake.is_some_and(|mask| !mask[i]) {
                continue;
            }
            let mut rng = streams.rng(id, StreamStage::Update);
            agent.update(obs, &mut rng);
        }
    }

    fn flip_source_preferences(&mut self) -> usize {
        let mut flipped = 0;
        for agent in self.agents.iter_mut() {
            if agent.flip_source_preference() {
                flipped += 1;
            }
        }
        flipped
    }

    fn opinion(&self, id: usize) -> Opinion {
        self.agents[id].opinion()
    }

    fn stage_id(&self, id: usize) -> u32 {
        self.agents[id].stage_id()
    }

    fn weak_opinion(&self, id: usize) -> Option<Opinion> {
        self.agents[id].weak_opinion()
    }
}

impl<P: Protocol> ColumnarProtocol for P {
    type State = ScalarState<P::Agent>;

    fn alphabet_size(&self) -> usize {
        Protocol::alphabet_size(self)
    }

    fn init_state(&self, config: &PopulationConfig, streams: &RoundStreams) -> Self::State {
        let agents = config
            .iter_roles()
            .enumerate()
            .map(|(id, role)| {
                let mut rng = streams.rng(id, StreamStage::Init);
                self.init_agent(role, &mut rng)
            })
            .collect();
        ScalarState { agents }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use rand::SeedableRng;

    /// A protocol that displays its opinion and never changes it — enough
    /// to exercise the trait plumbing.
    struct Stubborn;
    struct StubbornAgent(Opinion);

    impl Protocol for Stubborn {
        type Agent = StubbornAgent;
        fn alphabet_size(&self) -> usize {
            2
        }
        fn init_agent(&self, role: Role, _rng: &mut StreamRng) -> StubbornAgent {
            StubbornAgent(role.preference().unwrap_or(Opinion::Zero))
        }
    }

    impl AgentState for StubbornAgent {
        fn display(&self, _rng: &mut StreamRng) -> usize {
            self.0.as_index()
        }
        fn update(&mut self, _observed: &[u64], _rng: &mut StreamRng) {}
        fn opinion(&self) -> Opinion {
            self.0
        }
    }

    #[test]
    fn trait_plumbing_works() {
        let mut rng = StreamRng::seed_from_u64(0);
        let cfg = PopulationConfig::new(4, 1, 2, 1).unwrap();
        let agents: Vec<StubbornAgent> = cfg
            .iter_roles()
            .map(|r| Stubborn.init_agent(r, &mut rng))
            .collect();
        assert_eq!(agents[0].opinion(), Opinion::One);
        assert_eq!(agents[2].opinion(), Opinion::Zero);
        assert_eq!(agents[3].opinion(), Opinion::Zero);
        assert_eq!(agents[0].display(&mut rng), 1);
        assert_eq!(Protocol::alphabet_size(&Stubborn), 2);
    }

    #[test]
    fn blanket_adapter_builds_scalar_state() {
        let cfg = PopulationConfig::new(5, 1, 2, 1).unwrap();
        let streams = RoundStreams::new(9, 0);
        let state = ColumnarProtocol::init_state(&Stubborn, &cfg, &streams);
        assert_eq!(state.len(), 5);
        assert!(!state.is_empty());
        assert_eq!(state.opinion(0), Opinion::One);
        assert_eq!(state.count_opinion(Opinion::One), 2);
        assert_eq!(state.count_opinion(Opinion::Zero), 3);
        assert_eq!(ColumnarProtocol::alphabet_size(&Stubborn), 2);
    }

    #[test]
    fn observability_defaults_report_single_stage() {
        let cfg = PopulationConfig::new(3, 1, 2, 1).unwrap();
        let streams = RoundStreams::new(2, 0);
        let state = ColumnarProtocol::init_state(&Stubborn, &cfg, &streams);
        // Stubborn does not override the observability hooks, so every
        // agent sits in the default single stage with no weak opinion.
        for id in 0..state.len() {
            assert_eq!(ColumnarState::stage_id(&state, id), 0);
            assert_eq!(ColumnarState::weak_opinion(&state, id), None);
        }
    }

    #[test]
    fn scalar_state_chunks_cover_population_in_order() {
        let cfg = PopulationConfig::new(7, 0, 3, 1).unwrap();
        let streams = RoundStreams::new(1, 0);
        let mut state = ColumnarProtocol::init_state(&Stubborn, &cfg, &streams);
        let chunks = state.chunks_mut(3);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn display_chunk_is_chunking_invariant() {
        let cfg = PopulationConfig::new(6, 2, 3, 1).unwrap();
        let streams = RoundStreams::new(4, 0);
        let state = ColumnarProtocol::init_state(&Stubborn, &cfg, &streams);
        let mut whole = vec![0usize; 6];
        state.display_chunk(0..6, &mut whole, &streams);
        let mut pieces = vec![0usize; 6];
        state.display_chunk(0..2, &mut pieces[0..2], &streams);
        state.display_chunk(2..6, &mut pieces[2..6], &streams);
        assert_eq!(whole, pieces);
    }
}
