//! The protocol abstraction: what a spreading algorithm must provide to run
//! on the engine.
//!
//! A [`Protocol`] is a factory for per-agent state machines
//! ([`AgentState`]). Each round the world calls [`AgentState::display`] on
//! every agent, routes the displayed symbols through the noisy channel, and
//! then calls [`AgentState::update`] with the agent's observation counts.
//!
//! # Why observations are count vectors
//!
//! In the noisy PULL model agents are anonymous: an observation carries no
//! sender identity, only a (noisy) symbol. Every algorithm in the paper —
//! SF's counters, SSF's majority-over-memory, the boosting majority — is a
//! symmetric function of the received *multiset* of symbols, and a multiset
//! over `Σ` is exactly a count vector of length `|Σ|`. Delivering counts is
//! therefore lossless, and it is what allows the aggregated channel to skip
//! materializing individual messages.

use rand::rngs::StdRng;

use crate::opinion::Opinion;
use crate::population::Role;

/// A spreading algorithm: a factory of per-agent state machines plus static
/// protocol metadata.
pub trait Protocol {
    /// The per-agent state machine type.
    type Agent: AgentState;

    /// Size of the communication alphabet `|Σ|` (2 for SF, 4 for SSF).
    fn alphabet_size(&self) -> usize;

    /// Creates the initial state for an agent with the given role.
    ///
    /// `rng` may be used for randomized initialization; the engine passes
    /// its own deterministic generator.
    fn init_agent(&self, role: Role, rng: &mut StdRng) -> Self::Agent;
}

/// The per-agent, per-round behaviour of a protocol.
pub trait AgentState {
    /// The symbol (index into `Σ`) this agent displays this round.
    ///
    /// Called exactly once per round, *before* any observations are
    /// delivered, matching step 1 of the model.
    fn display(&self, rng: &mut StdRng) -> usize;

    /// Consumes this round's observations: `observed[σ]` is how many of the
    /// agent's `h` samples arrived (post-noise) as symbol `σ`.
    fn update(&mut self, observed: &[u64], rng: &mut StdRng);

    /// The agent's current opinion `Y ∈ {0, 1}`.
    fn opinion(&self) -> Opinion;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use rand::SeedableRng;

    /// A protocol that displays its opinion and never changes it — enough
    /// to exercise the trait plumbing.
    struct Stubborn;
    struct StubbornAgent(Opinion);

    impl Protocol for Stubborn {
        type Agent = StubbornAgent;
        fn alphabet_size(&self) -> usize {
            2
        }
        fn init_agent(&self, role: Role, _rng: &mut StdRng) -> StubbornAgent {
            StubbornAgent(role.preference().unwrap_or(Opinion::Zero))
        }
    }

    impl AgentState for StubbornAgent {
        fn display(&self, _rng: &mut StdRng) -> usize {
            self.0.as_index()
        }
        fn update(&mut self, _observed: &[u64], _rng: &mut StdRng) {}
        fn opinion(&self) -> Opinion {
            self.0
        }
    }

    #[test]
    fn trait_plumbing_works() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PopulationConfig::new(4, 1, 2, 1).unwrap();
        let agents: Vec<StubbornAgent> = cfg
            .iter_roles()
            .map(|r| Stubborn.init_agent(r, &mut rng))
            .collect();
        assert_eq!(agents[0].opinion(), Opinion::One);
        assert_eq!(agents[2].opinion(), Opinion::Zero);
        assert_eq!(agents[3].opinion(), Opinion::Zero);
        assert_eq!(agents[0].display(&mut rng), 1);
        assert_eq!(Stubborn.alphabet_size(), 2);
    }
}
