//! Discrete-round simulation engine for the *noisy PULL(h)* communication
//! model (Section 1.3 of the paper).
//!
//! The model: `n` agents proceed in synchronous rounds. Each round, every
//! agent
//!
//! 1. chooses a message `σ ∈ Σ` to display,
//! 2. samples `h` agents uniformly at random **with replacement** (possibly
//!    itself, possibly the same agent twice),
//! 3. receives a noisy version of each sampled agent's displayed message —
//!    each observation independently passes through a stochastic noise
//!    matrix `N` ([`np_linalg::noise::NoiseMatrix`]),
//! 4. updates its opinion and internal state.
//!
//! # Architecture
//!
//! * [`opinion`], [`population`] — model vocabulary: binary opinions, agent
//!   roles (source with a preference / non-source), population
//!   configuration.
//! * [`protocol`] — the [`protocol::Protocol`] / [`protocol::AgentState`]
//!   traits every spreading algorithm implements. Observations are
//!   delivered as *per-symbol counts*: the protocols in this workspace are
//!   all anonymous and order-oblivious, so a count vector is a lossless
//!   representation of the received multiset.
//! * [`channel`] — two interchangeable, distribution-identical
//!   implementations of step 2+3: a literal per-sample channel, and an
//!   aggregated channel that draws each agent's observation counts from
//!   multinomials in `O(|Σ|²)` per agent instead of `O(h)` (the identity
//!   behind it is documented and tested there). This is what makes the
//!   `h = n` experiments of the paper tractable.
//! * [`counts`] — the mean-field class-count backend: the same collapse,
//!   pushed one level further, from per-agent multinomials to per-class
//!   transition laws. `O(#classes)` per round instead of `O(n)`, opening
//!   `n = 10⁷–10⁸`; distributionally (not bit-level) equivalent to the
//!   per-agent engine, aggregated with-replacement channels only.
//! * [`world`] — the round loop, consensus detection, and the adversarial
//!   state-corruption hook for self-stabilization experiments.
//! * [`packed`] — bit-plane packed display storage: the word-level state
//!   layout the round loop runs on (display histograms are plane
//!   popcounts; scalar display vectors survive as seams for the exact
//!   channel and for tests).
//! * [`faults`] — deterministic *mid-run* fault injection: scheduled
//!   re-corruption, source-preference flips (trend changes), noise
//!   swaps/ramps, and agent sleep, with per-event recovery metrics.
//! * [`metrics`] — time series of correct-opinion counts, convergence
//!   records.
//! * [`runner`] — a scoped-thread multi-seed batch runner with
//!   deterministic seed fan-out, plus the chunk scatter helper behind the
//!   world's intra-round parallelism.
//! * [`streams`] — per-agent RNG streams addressed by
//!   `(seed, round, agent, stage)`; the determinism contract that makes a
//!   single round parallelizable with thread-count-invariant results.
//! * [`invariants`] — debug-assertion checks of engine-level structural
//!   properties, compiled into debug builds and into any build with the
//!   `strict-invariants` feature.
//! * [`push`] — the noisy PUSH(h) model (the paper's §1.5 contrast class,
//!   where reception is reliable even though content is noisy), used to
//!   measure the PULL/PUSH separation.
//! * [`snapshot`] — the versioned `np-snap/v1` binary encoding behind
//!   [`world::World::snapshot`] / [`world::World::restore`]: crash-safe
//!   mid-run persistence with a byte-identical-continuation guarantee
//!   (the stream design means no RNG state is ever serialized).
//! * [`topology`] — graph-restricted PULL: deterministic CSR neighbor
//!   lists (ring, random regular, power-law) that confine each agent's
//!   samples to its neighborhood; the complete graph stays the default
//!   and costs nothing.
//!
//! # Example
//!
//! A minimal protocol (everyone copies the majority of what they observe)
//! run to consensus under 10% uniform noise. Plain majority dynamics can
//! only amplify an existing display majority — overcoming *few* sources is
//! exactly what the paper's protocols are for — so this toy example seeds
//! a majority of stubborn sources:
//!
//! ```
//! use np_engine::channel::ChannelKind;
//! use np_engine::opinion::Opinion;
//! use np_engine::population::{PopulationConfig, Role};
//! use np_engine::protocol::{AgentState, Protocol};
//! use np_engine::world::World;
//! use np_linalg::noise::NoiseMatrix;
//! use np_engine::streams::StreamRng;
//! use rand::Rng;
//!
//! struct Majority;
//! struct MajorityAgent {
//!     role: Role,
//!     opinion: Opinion,
//! }
//!
//! impl Protocol for Majority {
//!     type Agent = MajorityAgent;
//!     fn alphabet_size(&self) -> usize {
//!         2
//!     }
//!     fn init_agent(&self, role: Role, _rng: &mut StreamRng) -> MajorityAgent {
//!         let opinion = match role {
//!             Role::Source(p) => p,
//!             Role::NonSource => Opinion::Zero,
//!         };
//!         MajorityAgent { role, opinion }
//!     }
//! }
//!
//! impl AgentState for MajorityAgent {
//!     fn display(&self, _rng: &mut StreamRng) -> usize {
//!         self.opinion.as_index()
//!     }
//!     fn update(&mut self, observed: &[u64], rng: &mut StreamRng) {
//!         if let Role::Source(p) = self.role {
//!             self.opinion = p; // sources are stubborn in this toy protocol
//!             return;
//!         }
//!         self.opinion = match observed[1].cmp(&observed[0]) {
//!             std::cmp::Ordering::Greater => Opinion::One,
//!             std::cmp::Ordering::Less => Opinion::Zero,
//!             std::cmp::Ordering::Equal => Opinion::from_bool(rng.gen()),
//!         };
//!     }
//!     fn opinion(&self) -> Opinion {
//!         self.opinion
//!     }
//! }
//!
//! let config = PopulationConfig::new(64, 0, 40, 64)?; // n=64, 40 one-sources, h=n
//! let noise = NoiseMatrix::uniform(2, 0.1)?;
//! let mut world = World::new(&Majority, config, &noise, ChannelKind::Aggregated, 42)?;
//! let outcome = world.run_until_consensus(500);
//! assert!(outcome.converged());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must not panic on recoverable errors (experiment workers
// would die mid-batch); tests are exempt. `.expect()` documenting an
// infallible-by-construction case is allowed but audited by
// `cargo xtask check`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;

pub mod channel;
pub mod counts;
pub mod faults;
pub mod invariants;
pub mod metrics;
pub mod opinion;
pub mod packed;
pub mod population;
pub mod protocol;
pub mod push;
pub mod runner;
pub mod snapshot;
pub mod streams;
pub mod topology;
pub mod world;

pub use error::EngineError;

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
