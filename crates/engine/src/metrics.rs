//! Run metrics: convergence outcomes and time series of opinion counts.

use crate::opinion::Opinion;

/// The outcome of a bounded run: did the system reach consensus on the
/// correct opinion, and when.
///
/// Produced by [`crate::world::World::run_until_consensus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// All agents held the correct opinion at the end of the given round
    /// (1-based count of completed rounds).
    Converged {
        /// Rounds executed until the first all-correct configuration.
        rounds: u64,
    },
    /// The round budget was exhausted first.
    TimedOut {
        /// The budget that was exhausted.
        budget: u64,
        /// Number of agents holding the correct opinion at the end.
        correct_at_end: usize,
    },
}

impl RunOutcome {
    /// Returns `true` if the run converged within budget.
    pub fn converged(&self) -> bool {
        matches!(self, RunOutcome::Converged { .. })
    }

    /// Rounds to convergence, if the run converged.
    pub fn rounds(&self) -> Option<u64> {
        match self {
            RunOutcome::Converged { rounds } => Some(*rounds),
            RunOutcome::TimedOut { .. } => None,
        }
    }
}

/// Per-round time series of how many agents hold each opinion.
///
/// Recording is optional (it costs one pass per round); enable it with
/// [`crate::world::World::record_series`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpinionSeries {
    ones: Vec<usize>,
    n: usize,
}

impl OpinionSeries {
    /// Creates an empty series for a population of `n` agents.
    pub fn new(n: usize) -> Self {
        OpinionSeries {
            ones: Vec::new(),
            n,
        }
    }

    /// Appends one round's count of agents holding opinion 1.
    pub fn push(&mut self, ones: usize) {
        debug_assert!(ones <= self.n);
        self.ones.push(ones);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.ones.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ones.is_empty()
    }

    /// Count of agents holding `opinion` after the given recorded round.
    ///
    /// # Panics
    ///
    /// Panics if `round >= self.len()`.
    pub fn count(&self, round: usize, opinion: Opinion) -> usize {
        match opinion {
            Opinion::One => self.ones[round],
            Opinion::Zero => self.n - self.ones[round],
        }
    }

    /// The margin above half of the population holding `opinion` after the
    /// given round — the paper's `A_ℓ` when `opinion` is correct (can be
    /// negative).
    ///
    /// # Panics
    ///
    /// Panics if `round >= self.len()`.
    pub fn margin(&self, round: usize, opinion: Opinion) -> f64 {
        self.count(round, opinion) as f64 - self.n as f64 / 2.0
    }

    /// The full series of counts for `opinion`, one entry per round.
    pub fn counts(&self, opinion: Opinion) -> Vec<usize> {
        (0..self.len()).map(|r| self.count(r, opinion)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let c = RunOutcome::Converged { rounds: 17 };
        assert!(c.converged());
        assert_eq!(c.rounds(), Some(17));
        let t = RunOutcome::TimedOut {
            budget: 100,
            correct_at_end: 42,
        };
        assert!(!t.converged());
        assert_eq!(t.rounds(), None);
    }

    #[test]
    fn series_counts_and_margins() {
        let mut s = OpinionSeries::new(10);
        assert!(s.is_empty());
        s.push(3);
        s.push(7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.count(0, Opinion::One), 3);
        assert_eq!(s.count(0, Opinion::Zero), 7);
        assert_eq!(s.count(1, Opinion::One), 7);
        assert_eq!(s.margin(1, Opinion::One), 2.0);
        assert_eq!(s.margin(0, Opinion::One), -2.0);
        assert_eq!(s.counts(Opinion::One), vec![3, 7]);
        assert_eq!(s.counts(Opinion::Zero), vec![7, 3]);
    }
}
