//! Run metrics: convergence outcomes, time series of opinion counts, and
//! the per-round observer hook ([`RunObserver`] / [`TraceRecorder`]).
//!
//! # Determinism vs. timing
//!
//! [`RoundMetrics`] is a pure function of the trajectory, so traces built
//! from it are byte-identical across thread counts — the same contract as
//! the trajectory itself. [`StageTimings`] is *wall-clock* data and
//! therefore inherently nondeterministic; it is delivered alongside the
//! metrics but must never be mixed into artifacts that are byte-compared
//! across runs (the JSONL/summary writers in `np-bench` keep it out).

use std::time::Duration;

use crate::opinion::Opinion;

/// The outcome of a bounded run: did the system reach consensus on the
/// correct opinion, and when.
///
/// Produced by [`crate::world::World::run_until_consensus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// All agents held the correct opinion at the end of the given round
    /// (1-based count of completed rounds).
    Converged {
        /// Rounds executed until the first all-correct configuration.
        rounds: u64,
    },
    /// The round budget was exhausted first.
    TimedOut {
        /// The budget that was exhausted.
        budget: u64,
        /// Number of agents holding the correct opinion at the end.
        correct_at_end: usize,
    },
}

impl RunOutcome {
    /// Returns `true` if the run converged within budget.
    pub fn converged(&self) -> bool {
        matches!(self, RunOutcome::Converged { .. })
    }

    /// Rounds to convergence, if the run converged.
    pub fn rounds(&self) -> Option<u64> {
        match self {
            RunOutcome::Converged { rounds } => Some(*rounds),
            RunOutcome::TimedOut { .. } => None,
        }
    }
}

/// Per-round time series of how many agents hold each opinion.
///
/// Recording is optional (it costs one pass per round); enable it with
/// [`crate::world::World::record_series`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpinionSeries {
    ones: Vec<usize>,
    n: usize,
}

impl OpinionSeries {
    /// Creates an empty series for a population of `n` agents.
    pub fn new(n: usize) -> Self {
        OpinionSeries {
            ones: Vec::new(),
            n,
        }
    }

    /// Appends one round's count of agents holding opinion 1.
    pub fn push(&mut self, ones: usize) {
        debug_assert!(ones <= self.n);
        self.ones.push(ones);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.ones.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ones.is_empty()
    }

    /// Count of agents holding `opinion` after the given recorded round.
    ///
    /// # Panics
    ///
    /// Panics if `round >= self.len()`.
    pub fn count(&self, round: usize, opinion: Opinion) -> usize {
        match opinion {
            Opinion::One => self.ones[round],
            Opinion::Zero => self.n - self.ones[round],
        }
    }

    /// The margin above half of the population holding `opinion` after the
    /// given round — the paper's `A_ℓ` when `opinion` is correct (can be
    /// negative).
    ///
    /// # Panics
    ///
    /// Panics if `round >= self.len()`.
    pub fn margin(&self, round: usize, opinion: Opinion) -> f64 {
        self.count(round, opinion) as f64 - self.n as f64 / 2.0
    }

    /// The full series of counts for `opinion`, one entry per round.
    pub fn counts(&self, opinion: Opinion) -> Vec<usize> {
        (0..self.len()).map(|r| self.count(r, opinion)).collect()
    }
}

/// Deterministic snapshot of the system after one completed round,
/// collected by the observer hook (enable with
/// [`crate::world::World::record_trace`] or
/// [`crate::world::World::set_observer`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundMetrics {
    /// 1-based count of completed rounds when the snapshot was taken.
    pub round: u64,
    /// Population size.
    pub n: usize,
    /// Agents holding the correct opinion.
    pub correct: usize,
    /// Stage occupancy: `(stage_id, agents in that stage)`, sorted by
    /// stage id, omitting empty stages. Stage ids come from
    /// [`crate::protocol::ColumnarState::stage_id`].
    pub stages: Vec<(u32, usize)>,
    /// Agents whose weak opinion has formed
    /// ([`crate::protocol::ColumnarState::weak_opinion`] is `Some`).
    pub weak_formed: usize,
    /// Of those, how many weak opinions are correct.
    pub weak_correct: usize,
    /// Labels of the fault events injected just before this round executed
    /// ([`crate::faults`]); empty for fault-free rounds. Part of the
    /// deterministic trajectory (a pure function of the fault plan), so it
    /// may flow into byte-compared artifacts.
    pub faults: Vec<String>,
}

impl RoundMetrics {
    /// The margin of the correct opinion over half the population — the
    /// paper's `A_ℓ` (can be negative).
    pub fn margin(&self) -> f64 {
        self.correct as f64 - self.n as f64 / 2.0
    }
}

/// The result of one observability sweep over the population
/// ([`crate::protocol::ColumnarState::metrics_sweep`]): the
/// state-dependent fields of [`RoundMetrics`], before the world adds the
/// round number and fault labels. Columnar ports fill this in one fused
/// pass over their lanes; the trait default walks the per-agent
/// accessors. Both must agree exactly — these numbers flow into
/// byte-compared run summaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSweep {
    /// Agents holding the correct opinion.
    pub correct: usize,
    /// Stage occupancy, sorted ascending by stage id, empty stages
    /// omitted.
    pub stages: Vec<(u32, usize)>,
    /// Agents whose weak opinion has formed.
    pub weak_formed: usize,
    /// Of those, how many weak opinions are correct.
    pub weak_correct: usize,
}

/// Wall-clock time spent in each phase of one round.
///
/// Nondeterministic by nature; see the module docs for where it may and
/// may not flow. The engine's invariant checks run inside the phases, so
/// their cost is attributed to the enclosing phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Pass 1: computing displayed symbols into the packed bit planes,
    /// including the popcount display histogram (the paper's sampling
    /// setup).
    pub display: Duration,
    /// Pass 2: the noisy channel **and** the protocol updates — the hot
    /// path fuses phases 2–4 into one scatter, so sampling, noise and
    /// updates are timed together here.
    pub observe: Duration,
    /// Always zero under the fused hot path; kept so accumulated timing
    /// totals and their serialized forms stay shape-compatible.
    pub update: Duration,
    /// The observer's own metrics pass (stage/opinion sweep).
    pub collect: Duration,
}

impl StageTimings {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.display + self.observe + self.update + self.collect
    }

    /// Accumulates another round's timings into this one.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.display += other.display;
        self.observe += other.observe;
        self.update += other.update;
        self.collect += other.collect;
    }
}

/// A stopwatch for phase timing inside [`crate::world::World::step`].
///
/// This is the **one sanctioned wall-clock site** in the engine: timing
/// belongs to the observer, never to protocol code (enforced by the
/// `wall-clock` and `protocol-instant` xtask lints). The clock only runs
/// when an observer is attached, keeping the disabled path free of time
/// syscalls.
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    last: std::time::Instant,
}

impl StageClock {
    /// Starts the clock.
    pub fn start() -> Self {
        StageClock {
            // xtask-allow: wall-clock (sanctioned observer clock; runs
            // only when an observer is attached)
            last: std::time::Instant::now(),
        }
    }

    /// Time since the previous lap (or since `start`), and restarts.
    pub fn lap(&mut self) -> Duration {
        // xtask-allow: wall-clock (sanctioned observer clock; runs only
        // when an observer is attached)
        let now = std::time::Instant::now();
        let elapsed = now - self.last;
        self.last = now;
        elapsed
    }
}

/// Per-round observer: receives one [`RoundMetrics`] snapshot (plus that
/// round's [`StageTimings`]) after every completed round.
///
/// Attach with [`crate::world::World::set_observer`] for a custom sink, or
/// use the built-in [`TraceRecorder`] via
/// [`crate::world::World::record_trace`]. `Send` so worlds holding an
/// observer can still move across threads (e.g. into `run_batch` jobs).
pub trait RunObserver: Send {
    /// Called once after each completed round.
    fn on_round(&mut self, metrics: &RoundMetrics, timings: &StageTimings);
}

/// The built-in [`RunObserver`]: keeps every round's metrics and the
/// accumulated phase timings in memory, ready for the trace/summary
/// writers in `np-bench`.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    rounds: Vec<RoundMetrics>,
    timings: StageTimings,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// All recorded rounds, in order.
    pub fn rounds(&self) -> &[RoundMetrics] {
        &self.rounds
    }

    /// The most recent round's metrics, if any round was recorded.
    pub fn last(&self) -> Option<&RoundMetrics> {
        self.rounds.last()
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Wall-clock phase totals accumulated over all recorded rounds.
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }
}

impl RunObserver for TraceRecorder {
    fn on_round(&mut self, metrics: &RoundMetrics, timings: &StageTimings) {
        self.rounds.push(metrics.clone());
        self.timings.accumulate(timings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let c = RunOutcome::Converged { rounds: 17 };
        assert!(c.converged());
        assert_eq!(c.rounds(), Some(17));
        let t = RunOutcome::TimedOut {
            budget: 100,
            correct_at_end: 42,
        };
        assert!(!t.converged());
        assert_eq!(t.rounds(), None);
    }

    fn sample_metrics(round: u64, correct: usize) -> RoundMetrics {
        RoundMetrics {
            round,
            n: 10,
            correct,
            stages: vec![(0, 4), (1, 6)],
            weak_formed: 6,
            weak_correct: 5,
            faults: Vec::new(),
        }
    }

    #[test]
    fn round_metrics_margin() {
        assert_eq!(sample_metrics(1, 7).margin(), 2.0);
        assert_eq!(sample_metrics(1, 3).margin(), -2.0);
    }

    #[test]
    fn trace_recorder_accumulates() {
        let mut rec = TraceRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.last(), None);
        let t1 = StageTimings {
            display: Duration::from_micros(3),
            observe: Duration::from_micros(5),
            update: Duration::from_micros(7),
            collect: Duration::from_micros(2),
        };
        rec.on_round(&sample_metrics(1, 6), &t1);
        rec.on_round(&sample_metrics(2, 8), &t1);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.rounds()[0].correct, 6);
        assert_eq!(rec.last().map(|m| m.round), Some(2));
        assert_eq!(rec.timings().display, Duration::from_micros(6));
        assert_eq!(rec.timings().total(), Duration::from_micros(34));
    }

    #[test]
    fn stage_clock_laps_monotonically() {
        let mut clock = StageClock::start();
        let a = clock.lap();
        let b = clock.lap();
        // Durations are non-negative by construction; just exercise both
        // paths and check the type round-trips.
        assert!(a + b >= a);
    }

    #[test]
    fn series_counts_and_margins() {
        let mut s = OpinionSeries::new(10);
        assert!(s.is_empty());
        s.push(3);
        s.push(7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.count(0, Opinion::One), 3);
        assert_eq!(s.count(0, Opinion::Zero), 7);
        assert_eq!(s.count(1, Opinion::One), 7);
        assert_eq!(s.margin(1, Opinion::One), 2.0);
        assert_eq!(s.margin(0, Opinion::One), -2.0);
        assert_eq!(s.counts(Opinion::One), vec![3, 7]);
        assert_eq!(s.counts(Opinion::Zero), vec![7, 3]);
    }
}
