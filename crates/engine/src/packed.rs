//! Packed bit-plane display storage — the word-level state layout behind
//! the hot round loop.
//!
//! A round's displayed symbols are values in `0..d`. Instead of one
//! `usize` per agent, [`PackedDisplays`] stores them across
//! `⌈log₂ d⌉` *bit planes*: plane `p` holds bit `p` of every agent's
//! symbol, 64 agents per `u64` word. For the paper's protocols this is 1
//! plane (SF, binary alphabet) or 2 planes (SSF, `d = 4`) — a 64× (or
//! 32×) density improvement over the scalar vector, and it turns the
//! per-round display histogram into a handful of `popcount`s per 64
//! agents instead of 64 scalar reads.
//!
//! # Layout
//!
//! Words are plane-major: plane `p` occupies
//! `words[p · W .. (p + 1) · W]` where `W = ⌈n / 64⌉`, and agent `i`
//! lives at bit `i % 64` of word `i / 64` in every plane. Bits at
//! positions `≥ n` in the last word of each plane are **always zero** —
//! every mutator maintains this, and the histogram kernels rely on it
//! (symbol 0 is counted by subtraction, so stray tail bits would
//! miscount).
//!
//! # Seams
//!
//! The packed form is the engine's working representation; everything
//! that wants scalar symbols goes through two seams:
//!
//! * [`PackedDisplays::unpack_into`] — materializes the plain
//!   `Vec<usize>` view (the exact channel's literal sampling path, tests,
//!   and any scalar consumer).
//! * [`PackedDisplays::pack_from`] — ingests a scalar display vector
//!   (ports of the round loop that still produce scalar symbols).
//!
//! The snapshot format is untouched by all of this: displays are
//! transient per-round state and were never serialized, so `np-snap/v1`
//! bytes are identical whether the world runs packed or scalar.

use std::ops::Range;

/// Displayed symbols for a whole population, packed across bit planes.
///
/// See the [module docs](self) for the layout and the tail-bit invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedDisplays {
    n: usize,
    d: usize,
    planes: usize,
    /// Plane-major storage, `planes · ⌈n / 64⌉` words.
    words: Vec<u64>,
}

/// Number of bit planes needed for symbols in `0..d`.
fn planes_for(d: usize) -> usize {
    assert!(d >= 1, "alphabet must be nonempty");
    // d symbols need ⌈log₂ d⌉ bits; a 1-symbol alphabet still gets one
    // plane so the chunk machinery has something to split.
    (usize::BITS - (d - 1).max(1).leading_zeros()) as usize
}

impl PackedDisplays {
    /// An all-zero display vector for `n` agents over a `d`-symbol
    /// alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `d == 0`.
    pub fn new(n: usize, d: usize) -> Self {
        assert!(n > 0, "no agents");
        let planes = planes_for(d);
        let wpp = n.div_ceil(64);
        PackedDisplays {
            n,
            d,
            planes,
            words: vec![0; planes * wpp],
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: construction rejects `n = 0`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Alphabet size `d`.
    pub fn alphabet_size(&self) -> usize {
        self.d
    }

    /// Number of bit planes (`⌈log₂ d⌉`, minimum 1).
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Words per plane (`⌈n / 64⌉`).
    pub fn words_per_plane(&self) -> usize {
        self.n.div_ceil(64)
    }

    /// The displayed symbol of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> usize {
        assert!(i < self.n, "agent {i} out of range {}", self.n);
        let wpp = self.words_per_plane();
        let (w, b) = (i / 64, i % 64);
        let mut sym = 0usize;
        for p in 0..self.planes {
            sym |= (((self.words[p * wpp + w] >> b) & 1) as usize) << p;
        }
        sym
    }

    /// Sets agent `i`'s displayed symbol.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or `symbol >= self.alphabet_size()`.
    pub fn set(&mut self, i: usize, symbol: usize) {
        assert!(i < self.n, "agent {i} out of range {}", self.n);
        assert!(symbol < self.d, "symbol {symbol} out of range {}", self.d);
        let wpp = self.words_per_plane();
        let (w, b) = (i / 64, i % 64);
        let bit = 1u64 << b;
        for p in 0..self.planes {
            let word = &mut self.words[p * wpp + w];
            if (symbol >> p) & 1 == 1 {
                *word |= bit;
            } else {
                *word &= !bit;
            }
        }
    }

    /// Zeroes every plane (symbol 0 for everyone).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Packs a scalar display vector.
    ///
    /// # Panics
    ///
    /// Panics if `displays.len() != self.len()` or any symbol is out of
    /// range.
    pub fn pack_from(&mut self, displays: &[usize]) {
        assert_eq!(displays.len(), self.n, "display vector length mismatch");
        self.clear();
        for (i, &s) in displays.iter().enumerate() {
            self.set(i, s);
        }
    }

    /// Unpacks into a scalar display vector (the seam consumed by the
    /// exact channel's literal sampling path).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn unpack_into(&self, out: &mut [usize]) {
        assert_eq!(out.len(), self.n, "display vector length mismatch");
        let wpp = self.words_per_plane();
        for (w, chunk) in out.chunks_mut(64).enumerate() {
            for (b, slot) in chunk.iter_mut().enumerate() {
                let mut sym = 0usize;
                for p in 0..self.planes {
                    sym |= (((self.words[p * wpp + w] >> b) & 1) as usize) << p;
                }
                *slot = sym;
            }
        }
    }

    /// The display histogram — `out[σ]` = number of agents displaying
    /// `σ` — computed from plane popcounts: for each nonzero symbol the
    /// planes are AND-combined (complemented where the symbol's bit is
    /// 0) and popcounted; symbol 0 falls out by subtraction, which is
    /// what makes the zero tail-bit invariant load-bearing.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.alphabet_size()`.
    pub fn histogram_into(&self, out: &mut [u64]) {
        assert_eq!(out.len(), self.d, "histogram length mismatch");
        let wpp = self.words_per_plane();
        histogram_words(&self.words, wpp, self.planes, self.n as u64, out);
    }

    /// Splits the population into disjoint word-aligned mutable chunks
    /// (`chunk_len` agents each, the last possibly shorter), pairing the
    /// per-plane word slices that cover each chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero or not a multiple of 64.
    pub fn chunks_mut(&mut self, chunk_len: usize) -> Vec<PackedChunkMut<'_>> {
        assert!(chunk_len > 0, "empty chunk");
        assert_eq!(chunk_len % 64, 0, "chunk length must be word-aligned");
        let n = self.n;
        let d = self.d;
        let wpc = chunk_len / 64;
        let wpp = self.words_per_plane();
        let num_chunks = n.div_ceil(chunk_len);
        let mut chunks: Vec<PackedChunkMut<'_>> = (0..num_chunks)
            .map(|ci| PackedChunkMut {
                start: ci * chunk_len,
                len: chunk_len.min(n - ci * chunk_len),
                d,
                planes: Vec::with_capacity(self.planes),
            })
            .collect();
        for plane in self.words.chunks_mut(wpp) {
            let mut rest = plane;
            for chunk in chunks.iter_mut() {
                let take = wpc.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                chunk.planes.push(head);
                rest = tail;
            }
        }
        chunks
    }
}

/// A disjoint mutable view of one word-aligned agent chunk of a
/// [`PackedDisplays`], safe to hand to a worker thread. Produced by
/// [`PackedDisplays::chunks_mut`]; display kernels [`clear`] it, [`set`]
/// each agent's symbol, then tally their partial histogram with
/// [`histogram_into`] — all without touching any other chunk's words.
///
/// [`clear`]: PackedChunkMut::clear
/// [`set`]: PackedChunkMut::set
/// [`histogram_into`]: PackedChunkMut::histogram_into
#[derive(Debug)]
pub struct PackedChunkMut<'a> {
    start: usize,
    len: usize,
    d: usize,
    /// One word slice per plane, all covering the same agents.
    planes: Vec<&'a mut [u64]>,
}

impl PackedChunkMut<'_> {
    /// Global id of the first agent in this chunk (a multiple of 64).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Alphabet size `d` of the parent [`PackedDisplays`].
    pub fn alphabet_size(&self) -> usize {
        self.d
    }

    /// Number of agents in this chunk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the chunk covers no agents (never produced by
    /// [`PackedDisplays::chunks_mut`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zeroes the chunk's words in every plane.
    pub fn clear(&mut self) {
        for plane in self.planes.iter_mut() {
            plane.fill(0);
        }
    }

    /// Sets the symbol of the agent at chunk-local index `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local >= self.len()` or the symbol is out of range.
    pub fn set(&mut self, local: usize, symbol: usize) {
        assert!(
            local < self.len,
            "local index {local} out of range {}",
            self.len
        );
        assert!(symbol < self.d, "symbol {symbol} out of range {}", self.d);
        let (w, b) = (local / 64, local % 64);
        let bit = 1u64 << b;
        for (p, plane) in self.planes.iter_mut().enumerate() {
            if (symbol >> p) & 1 == 1 {
                plane[w] |= bit;
            } else {
                plane[w] &= !bit;
            }
        }
    }

    /// Number of 64-bit words per plane in this chunk.
    pub fn words(&self) -> usize {
        self.planes.first().map_or(0, |p| p.len())
    }

    /// Stores one whole word of plane `plane` — the display bits of the
    /// 64 agents at chunk-local indices `word * 64 ..` in one write. This
    /// is the fast path for hand-written columnar ports; bits past the
    /// chunk's population (only possible in the final word) are masked
    /// off so the all-tail-zero invariant the popcount histograms rely on
    /// can never be violated by a caller.
    ///
    /// # Panics
    ///
    /// Panics if `plane` or `word` is out of range.
    pub fn set_plane_word(&mut self, plane: usize, word: usize, bits: u64) {
        assert!(word < self.words(), "word index {word} out of range");
        let valid = self.len - word * 64;
        let mask = if valid >= 64 {
            !0u64
        } else {
            (1u64 << valid) - 1
        };
        self.planes[plane][word] = bits & mask;
    }

    /// The chunk's partial display histogram, **added** into `out` (so
    /// per-worker tallies accumulate without an intermediate buffer).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the alphabet size.
    pub fn histogram_into(&self, out: &mut [u64]) {
        assert_eq!(out.len(), self.d, "histogram length mismatch");
        let wpp = self.planes.first().map_or(0, |p| p.len());
        // Flatten the plane slices view for the shared word kernel.
        let mut acc = vec![0u64; self.d];
        histogram_planes(&self.planes, wpp, self.len as u64, &mut acc);
        for (slot, c) in out.iter_mut().zip(&acc) {
            *slot += c;
        }
    }
}

/// Word-level histogram kernel over plane-major contiguous storage.
fn histogram_words(words: &[u64], wpp: usize, planes: usize, n: u64, out: &mut [u64]) {
    let views: Vec<&[u64]> = (0..planes)
        .map(|p| &words[p * wpp..(p + 1) * wpp])
        .collect();
    histogram_planes(&views, wpp, n, out);
}

/// The shared popcount tally: counts every nonzero symbol by AND-combining
/// planes (complemented where the symbol's bit is zero) and popcounting,
/// then recovers symbol 0 as `n − Σ`. Correct because tail bits past the
/// population are zero in every plane: any nonzero symbol's combination
/// ANDs in at least one un-complemented plane, zeroing the tail.
fn histogram_planes<W: std::ops::Deref<Target = [u64]>>(
    planes: &[W],
    wpp: usize,
    n: u64,
    out: &mut [u64],
) {
    out.fill(0);
    let d = out.len();
    let mut nonzero_total = 0u64;
    for (sym, slot) in out.iter_mut().enumerate().skip(1) {
        let mut count = 0u64;
        for w in 0..wpp {
            let mut acc = !0u64;
            for (p, plane) in planes.iter().enumerate() {
                let word = plane[w];
                acc &= if (sym >> p) & 1 == 1 { word } else { !word };
            }
            count += u64::from(acc.count_ones());
        }
        *slot = count;
        nonzero_total += count;
    }
    debug_assert!(
        nonzero_total <= n,
        "popcount tally {nonzero_total} exceeds population {n} — tail bits leaked"
    );
    if d > 0 {
        out[0] = n - nonzero_total;
    }
}

/// The world's chunk-sizing rule: word-aligned chunks, roughly four per
/// worker so ragged populations load-balance, never smaller than one
/// word. With one thread the whole population is a single chunk (no
/// scatter overhead on the serial path).
///
/// The single-word floor is load-bearing in the degenerate regime
/// `threads·4 > n/64` (tiny populations, many workers): there
/// `n.div_ceil(threads·4)` rounds up to one 64-agent word, every chunk
/// stays word-aligned, and the surplus workers simply receive no chunk.
/// The floor also covers `n = 0` (e.g. a counts-backend caller probing
/// the rule before populating), where `next_multiple_of(64)` alone would
/// return 0 and violate [`chunk_ranges`]'s non-empty-chunk contract.
pub fn chunk_len_for(n: usize, threads: usize) -> usize {
    if threads <= 1 {
        return n.next_multiple_of(64).max(64);
    }
    n.div_ceil(threads.saturating_mul(4))
        .next_multiple_of(64)
        .max(64)
}

/// Iterator over the word-aligned sub-ranges `chunk_len_for`-style
/// chunking induces on `0..n` — used by callers that need the ranges
/// without holding chunk views.
pub fn chunk_ranges(n: usize, chunk_len: usize) -> impl Iterator<Item = Range<usize>> {
    assert!(chunk_len > 0, "empty chunk");
    (0..n.div_ceil(chunk_len)).map(move |ci| {
        let start = ci * chunk_len;
        start..(start + chunk_len).min(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_histogram(displays: &[usize], d: usize) -> Vec<u64> {
        let mut h = vec![0u64; d];
        for &s in displays {
            h[s] += 1;
        }
        h
    }

    #[test]
    fn planes_scale_with_alphabet() {
        assert_eq!(PackedDisplays::new(10, 1).planes(), 1);
        assert_eq!(PackedDisplays::new(10, 2).planes(), 1);
        assert_eq!(PackedDisplays::new(10, 3).planes(), 2);
        assert_eq!(PackedDisplays::new(10, 4).planes(), 2);
        assert_eq!(PackedDisplays::new(10, 5).planes(), 3);
        assert_eq!(PackedDisplays::new(10, 8).planes(), 3);
        assert_eq!(PackedDisplays::new(10, 9).planes(), 4);
    }

    #[test]
    fn get_set_round_trip() {
        let mut p = PackedDisplays::new(130, 4);
        for i in 0..130 {
            p.set(i, i % 4);
        }
        for i in 0..130 {
            assert_eq!(p.get(i), i % 4, "agent {i}");
        }
        // Overwrites fully clear old bits (3 -> 0 must not leave planes
        // dirty).
        p.set(65, 3);
        p.set(65, 0);
        assert_eq!(p.get(65), 0);
    }

    #[test]
    fn pack_unpack_round_trip_with_ragged_tail() {
        // n % 64 != 0 exercises the tail-word invariant.
        let displays: Vec<usize> = (0..197).map(|i| (i * 7) % 4).collect();
        let mut p = PackedDisplays::new(197, 4);
        p.pack_from(&displays);
        let mut back = vec![usize::MAX; 197];
        p.unpack_into(&mut back);
        assert_eq!(back, displays);
    }

    #[test]
    fn histogram_matches_naive_counts() {
        for (n, d) in [
            (64usize, 2usize),
            (100, 2),
            (197, 4),
            (64, 3),
            (1, 4),
            (129, 5),
        ] {
            let displays: Vec<usize> = (0..n).map(|i| (i * 13 + 5) % d).collect();
            let mut p = PackedDisplays::new(n, d);
            p.pack_from(&displays);
            let mut hist = vec![0u64; d];
            p.histogram_into(&mut hist);
            assert_eq!(hist, naive_histogram(&displays, d), "n={n} d={d}");
        }
    }

    #[test]
    fn all_zero_population_counts_in_symbol_zero() {
        let p = PackedDisplays::new(77, 4);
        let mut hist = vec![0u64; 4];
        p.histogram_into(&mut hist);
        assert_eq!(hist, vec![77, 0, 0, 0]);
    }

    #[test]
    fn chunks_cover_population_in_order_and_write_through() {
        let n = 300;
        let mut p = PackedDisplays::new(n, 4);
        let chunks = p.chunks_mut(128);
        let metas: Vec<(usize, usize)> = chunks.iter().map(|c| (c.start(), c.len())).collect();
        assert_eq!(metas, vec![(0, 128), (128, 128), (256, 44)]);
        for mut chunk in chunks {
            let start = chunk.start();
            chunk.clear();
            for local in 0..chunk.len() {
                chunk.set(local, (start + local) % 4);
            }
        }
        for i in 0..n {
            assert_eq!(p.get(i), i % 4, "agent {i}");
        }
    }

    #[test]
    fn chunk_histograms_sum_to_global() {
        let n = 197;
        let displays: Vec<usize> = (0..n).map(|i| (i * 3) % 4).collect();
        let mut p = PackedDisplays::new(n, 4);
        p.pack_from(&displays);
        let mut total = vec![0u64; 4];
        for chunk in p.chunks_mut(64) {
            chunk.histogram_into(&mut total); // accumulates
        }
        assert_eq!(total, naive_histogram(&displays, 4));
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn chunks_reject_misaligned_length() {
        let mut p = PackedDisplays::new(100, 2);
        let _ = p.chunks_mut(50);
    }

    #[test]
    #[should_panic(expected = "symbol 2 out of range")]
    fn set_rejects_out_of_alphabet_symbol() {
        let mut p = PackedDisplays::new(10, 2);
        p.set(0, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_set_rejects_out_of_alphabet_symbol() {
        let mut p = PackedDisplays::new(64, 2);
        let mut chunks = p.chunks_mut(64);
        chunks[0].set(0, 2);
    }

    #[test]
    fn chunk_len_rule_is_word_aligned_and_covers() {
        for n in [1usize, 63, 64, 65, 4096, 100_000] {
            for threads in [1usize, 2, 4, 7, 16] {
                let c = chunk_len_for(n, threads);
                assert_eq!(c % 64, 0, "n={n} threads={threads}");
                assert!(c > 0);
                let covered: usize = chunk_ranges(n, c).map(|r| r.len()).sum();
                assert_eq!(covered, n, "n={n} threads={threads}");
                let mut expected_start = 0;
                for r in chunk_ranges(n, c) {
                    assert_eq!(r.start, expected_start);
                    expected_start = r.end;
                }
            }
        }
    }

    #[test]
    fn serial_chunking_is_one_chunk() {
        assert_eq!(chunk_len_for(4096, 1), 4096);
        assert_eq!(chunk_ranges(4096, 4096).count(), 1);
    }

    #[test]
    fn chunk_len_degenerate_many_threads_hits_word_floor() {
        // threads·4 > n/64: the rule must bottom out at one 64-agent word,
        // never 0, and surplus workers get no chunk rather than an empty
        // one.
        for n in [1usize, 63, 64, 65, 128, 500] {
            for threads in [8usize, 64, 1024, usize::MAX / 4, usize::MAX] {
                let c = chunk_len_for(n, threads);
                assert_eq!(c, 64, "n={n} threads={threads}");
                let covered: usize = chunk_ranges(n, c).map(|r| r.len()).sum();
                assert_eq!(covered, n);
                assert!(chunk_ranges(n, c).all(|r| !r.is_empty()));
                assert_eq!(chunk_ranges(n, c).count(), n.div_ceil(64));
            }
        }
    }

    #[test]
    fn chunk_len_zero_population_is_safe() {
        // n = 0 must still yield a positive (word-sized) chunk length so
        // `chunk_ranges`'s non-empty-chunk assert cannot trip; the induced
        // range set is simply empty.
        for threads in [1usize, 2, 16] {
            let c = chunk_len_for(0, threads);
            assert_eq!(c, 64, "threads={threads}");
            assert_eq!(chunk_ranges(0, c).count(), 0);
        }
    }
}
