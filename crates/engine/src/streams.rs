//! The engine's view of per-agent RNG streams.
//!
//! Every random decision in a [`crate::world::World`] round is drawn from
//! an independent generator addressed by `(seed, round, agent, stage)` —
//! see [`np_stats::streams`] for the derivation. The round loop hands a
//! [`RoundStreams`] (the `(seed, round)` prefix) to each execution phase,
//! and the phase derives per-agent generators for its [`StreamStage`].
//!
//! This is the determinism contract of the parallel engine: because an
//! agent's randomness is a pure function of its coordinate, the execution
//! is bit-identical no matter how agents are grouped into chunks or how
//! chunks are scheduled onto threads. It also means scalar
//! [`crate::protocol::Protocol`] implementations and their columnar ports
//! agree exactly — both consume the same streams at the same coordinates.

use np_stats::streams::{round_prefix, stream_seed_from_prefix};

pub use np_stats::streams::StreamRng;

/// The stage axis of a stream coordinate: which model step (or hook) the
/// generator feeds. Distinct stages of the same `(round, agent)` are
/// independent, so a stage that draws nothing costs nothing downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamStage {
    /// Agent-state initialization (used with round 0).
    Init,
    /// Step 1 — choosing the displayed symbol.
    Display,
    /// Steps 2+3 — sampling and channel noise.
    Observe,
    /// Step 4 — the state update (tie-breaking coins live here).
    Update,
    /// The adversarial corruption hook
    /// ([`crate::world::World::corrupt_agents`]).
    Corrupt,
    /// Deterministic topology generation ([`crate::topology`]): the
    /// per-agent draws that build a graph's neighbor lists (used with
    /// round 0, like [`StreamStage::Init`]).
    Topology,
    /// The mid-run fault-injection hook ([`crate::faults`]). The payload
    /// is the index of the event in its [`crate::faults::FaultPlan`], so
    /// distinct events scheduled for the same round draw from independent
    /// streams.
    Fault(u32),
    /// Message-latency draws of the simulated-time transport (`np_net`):
    /// one stream per `(round, sender)`, consumed in deterministic
    /// scheduler order.
    NetDelay,
    /// Message-drop coins of the simulated-time transport (`np_net`),
    /// addressed like [`StreamStage::NetDelay`].
    NetDrop,
    /// Peer selection for a node's `h` pull requests in the message-passing
    /// runtime (`np_net`). Kept separate from [`StreamStage::Observe`]
    /// because the node applies channel noise on *receipt*, decoupled from
    /// the sampling draw order of the round-based engine.
    NetPeer,
}

impl StreamStage {
    fn tag(self) -> u64 {
        match self {
            StreamStage::Init => 0,
            StreamStage::Display => 1,
            StreamStage::Observe => 2,
            StreamStage::Update => 3,
            StreamStage::Corrupt => 4,
            StreamStage::Topology => 5,
            StreamStage::NetDelay => 6,
            StreamStage::NetDrop => 7,
            StreamStage::NetPeer => 8,
            // Tags 9..16 are reserved for future fixed stages; fault
            // events are open-ended so they get the tail of the space.
            StreamStage::Fault(event) => 16 + u64::from(event),
        }
    }
}

/// The per-round stream family: a `(seed, round)` prefix from which any
/// agent's generator for any [`StreamStage`] can be derived without
/// coordination. `Copy`, cheap, and freely shareable across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoundStreams {
    round: u64,
    /// `(master, round)` folded once ([`np_stats::streams::round_prefix`]),
    /// so deriving a per-agent generator in the chunk kernels is two
    /// splitmix64 rounds — no per-agent re-folding of the round axis.
    prefix: u64,
}

impl RoundStreams {
    /// The stream family for `round` of the world seeded with `master`.
    pub fn new(master: u64, round: u64) -> Self {
        RoundStreams {
            round,
            prefix: round_prefix(master, round),
        }
    }

    /// The round this family belongs to.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The independent generator for `agent` at `stage` this round.
    pub fn rng(&self, agent: usize, stage: StreamStage) -> StreamRng {
        StreamRng::from_stream_seed(stream_seed_from_prefix(
            self.prefix,
            agent as u64,
            stage.tag(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_coordinate_same_stream() {
        let s = RoundStreams::new(42, 7);
        let mut a = s.rng(3, StreamStage::Update);
        let mut b = s.rng(3, StreamStage::Update);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn stages_are_independent() {
        let s = RoundStreams::new(42, 7);
        let stages = [
            StreamStage::Init,
            StreamStage::Display,
            StreamStage::Observe,
            StreamStage::Update,
            StreamStage::Corrupt,
            StreamStage::Topology,
            StreamStage::NetDelay,
            StreamStage::NetDrop,
            StreamStage::NetPeer,
            StreamStage::Fault(0),
            StreamStage::Fault(1),
            StreamStage::Fault(11),
        ];
        let firsts: Vec<u64> = stages.iter().map(|&st| s.rng(3, st).gen()).collect();
        for i in 0..firsts.len() {
            for j in i + 1..firsts.len() {
                assert_ne!(firsts[i], firsts[j], "stages {i} and {j} collide");
            }
        }
    }

    #[test]
    fn rounds_and_agents_are_independent() {
        let a: u64 = RoundStreams::new(1, 0).rng(0, StreamStage::Display).gen();
        let b: u64 = RoundStreams::new(1, 1).rng(0, StreamStage::Display).gen();
        let c: u64 = RoundStreams::new(1, 0).rng(1, StreamStage::Display).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn accessors() {
        let s = RoundStreams::new(5, 9);
        assert_eq!(s.round(), 9);
        assert_eq!(s, RoundStreams::new(5, 9));
    }
}
