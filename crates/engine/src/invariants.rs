//! Runtime invariant checks for the simulation engine.
//!
//! Each function here asserts a structural property the rest of the
//! workspace relies on — noise rows are probability distributions,
//! displayed symbols stay inside the alphabet, per-agent observation
//! counts account for exactly `h` samples, counters never exceed the
//! messages that could have produced them — and panics with a descriptive
//! message when the property is violated.
//!
//! All checks compile to no-ops unless [`ENABLED`] is true, which happens
//! in two cases:
//!
//! * debug builds (`cfg(debug_assertions)`) — so every `cargo test` run
//!   exercises them for free, and
//! * the opt-in `strict-invariants` cargo feature — so release-mode
//!   experiment binaries can keep the checks when chasing a suspected
//!   engine bug (`cargo run --release --features strict-invariants ...`).
//!
//! The hooks live in [`crate::world::World::step`] (thus every
//! `World::run`), [`crate::channel::Channel`] construction, and the SF/SSF
//! update functions in the `noisy-pull` crate.

use crate::population::PopulationConfig;

/// Tolerance for "this row sums to 1" checks. Noise rows are produced by
/// closed-form constructors, so anything beyond accumulated round-off
/// indicates a genuinely broken matrix.
pub const ROW_SUM_TOLERANCE: f64 = 1e-9;

/// True when invariant checks are compiled in (debug builds, or any build
/// with the `strict-invariants` feature).
pub const ENABLED: bool = cfg!(debug_assertions) || cfg!(feature = "strict-invariants");

/// Asserts that every row of `rows` is a probability distribution: entries
/// in `[0, 1]` and a sum within [`ROW_SUM_TOLERANCE`] of 1.
///
/// # Panics
///
/// Panics (when [`ENABLED`]) naming the first offending row.
pub fn check_rows_stochastic(rows: &[Vec<f64>]) {
    if !ENABLED {
        return;
    }
    for (i, row) in rows.iter().enumerate() {
        assert!(
            row.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "invariant violated: noise row {i} has an entry outside [0, 1]: {row:?}"
        );
        let sum: f64 = row.iter().sum();
        assert!(
            (sum - 1.0).abs() <= ROW_SUM_TOLERANCE,
            "invariant violated: noise row {i} sums to {sum}, not 1 (±{ROW_SUM_TOLERANCE}): {row:?}"
        );
    }
}

/// Asserts that every displayed symbol lies inside the `d`-symbol alphabet.
///
/// # Panics
///
/// Panics (when [`ENABLED`]) naming the first offending agent.
pub fn check_displays_in_alphabet(displays: &[usize], d: usize) {
    check_displays_chunk(0, displays, d);
}

/// Chunked form of [`check_displays_in_alphabet`]: `displays` covers the
/// agents starting at global id `first_agent`, so violation messages name
/// the real agent even when the check runs on a per-thread chunk.
///
/// # Panics
///
/// Panics (when [`ENABLED`]) naming the first offending agent.
pub fn check_displays_chunk(first_agent: usize, displays: &[usize], d: usize) {
    if !ENABLED {
        return;
    }
    if let Some((offset, &symbol)) = displays.iter().enumerate().find(|&(_, &s)| s >= d) {
        let agent = first_agent + offset;
        panic!(
            "invariant violated: agent {agent} displayed symbol {symbol} outside the \
             {d}-symbol alphabet"
        );
    }
}

/// Asserts that each agent's per-symbol observation counts sum to exactly
/// `h` — the PULL(h) model delivers exactly `h` (noisy) messages per agent
/// per round, so a mismatch means the channel lost or invented samples.
///
/// `observations` is the flattened `n × d` count matrix used by
/// [`crate::world::World`].
///
/// # Panics
///
/// Panics (when [`ENABLED`]) naming the first offending agent.
pub fn check_observation_counts(observations: &[u64], d: usize, h: u64) {
    check_observation_chunk(0, observations, d, h);
}

/// Chunked form of [`check_observation_counts`]: `observations` covers the
/// agents starting at global id `first_agent`, so violation messages name
/// the real agent even when the check runs on a per-thread chunk.
///
/// # Panics
///
/// Panics (when [`ENABLED`]) naming the first offending agent.
pub fn check_observation_chunk(first_agent: usize, observations: &[u64], d: usize, h: u64) {
    if !ENABLED {
        return;
    }
    for (offset, counts) in observations.chunks_exact(d).enumerate() {
        let total: u64 = counts.iter().sum();
        let agent = first_agent + offset;
        assert!(
            total == h,
            "invariant violated: agent {agent} observed {total} messages in a round, \
             expected exactly h = {h}: {counts:?}"
        );
    }
}

/// Asserts that a protocol counter is bounded by the number of messages
/// that could have contributed to it (`counter ≤ gathered`). Used by the
/// SF/SSF update functions: `Counter₀`/`Counter₁` count a *subset* of the
/// messages gathered during a phase, so exceeding the total means an
/// accounting bug.
///
/// # Panics
///
/// Panics (when [`ENABLED`]) with the counter's name.
pub fn check_counter_bounded(name: &str, counter: u64, gathered: u64) {
    if !ENABLED {
        return;
    }
    assert!(
        counter <= gathered,
        "invariant violated: {name} = {counter} exceeds the {gathered} messages gathered"
    );
}

/// Asserts the population's role arithmetic is consistent: at least one
/// agent, at least one source, sources fit in the population, a strict
/// source majority exists, and `h ≥ 1`.
///
/// [`PopulationConfig::new`] already rejects all of these, so a violation
/// means a config was forged or a future constructor skipped validation.
///
/// # Panics
///
/// Panics (when [`ENABLED`]) describing the inconsistency.
pub fn check_population(config: &PopulationConfig) {
    if !ENABLED {
        return;
    }
    let (n, s0, s1, h) = (config.n(), config.s0(), config.s1(), config.h());
    assert!(n > 0, "invariant violated: empty population");
    assert!(h > 0, "invariant violated: sample size h = 0");
    let sources = s0.checked_add(s1);
    assert!(
        sources.is_some_and(|s| s <= n),
        "invariant violated: {s0} + {s1} sources exceed n = {n}"
    );
    assert!(
        sources != Some(0),
        "invariant violated: no sources in population"
    );
    assert!(
        s0 != s1,
        "invariant violated: tied sources (s0 = s1 = {s0}) have no correct opinion"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // Positive cases must pass in every build mode; the #[should_panic]
    // cases are only live when the checks are compiled in (all test builds
    // are debug builds, and `--features strict-invariants` keeps them in
    // release test runs too).

    #[test]
    fn valid_inputs_pass_all_checks() {
        check_rows_stochastic(&[vec![0.9, 0.1], vec![0.5, 0.5]]);
        check_displays_in_alphabet(&[0, 1, 1, 0], 2);
        check_observation_counts(&[3, 5, 8, 0], 2, 8);
        check_counter_bounded("Counter₁", 7, 16);
        let config = PopulationConfig::new(8, 0, 1, 8).unwrap();
        check_population(&config);
    }

    #[test]
    // Asserting on the cfg-derived constant is the point of this test.
    #[allow(clippy::assertions_on_constants)]
    fn enabled_in_test_builds() {
        // Test builds carry debug_assertions (or the feature), otherwise
        // the #[should_panic] tests below would vacuously pass.
        assert!(ENABLED);
    }

    #[test]
    #[should_panic(expected = "noise row 1 sums to")]
    fn non_stochastic_row_panics() {
        check_rows_stochastic(&[vec![0.5, 0.5], vec![0.6, 0.6]]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn negative_entry_panics() {
        check_rows_stochastic(&[vec![1.5, -0.5]]);
    }

    #[test]
    #[should_panic(expected = "displayed symbol 2 outside")]
    fn display_outside_alphabet_panics() {
        check_displays_in_alphabet(&[0, 1, 2], 2);
    }

    #[test]
    #[should_panic(expected = "observed 7 messages")]
    fn lost_observation_panics() {
        check_observation_counts(&[3, 5, 3, 4], 2, 8);
    }

    #[test]
    #[should_panic(expected = "agent 12 displayed symbol 3")]
    fn chunked_display_check_names_global_agent() {
        check_displays_chunk(10, &[0, 1, 3], 2);
    }

    #[test]
    #[should_panic(expected = "agent 21 observed 5 messages")]
    fn chunked_observation_check_names_global_agent() {
        check_observation_chunk(20, &[4, 4, 2, 3], 2, 8);
    }

    #[test]
    #[should_panic(expected = "Counter₀ = 9 exceeds")]
    fn counter_above_gathered_panics() {
        check_counter_bounded("Counter₀", 9, 8);
    }
}
