//! Population configuration: who is a source, with which preference, and
//! the sample size `h`.

use crate::opinion::Opinion;
use crate::{EngineError, Result};

/// An agent's role, fixed for the whole execution (the adversary of the
/// self-stabilizing setting chooses roles but cannot corrupt them —
/// Section 1.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// A source agent with its initial preference. Sources know they are
    /// sources; the preference does not prevent the agent from later
    /// adopting a different *opinion*.
    Source(Opinion),
    /// A regular agent.
    NonSource,
}

impl Role {
    /// Returns `true` for sources.
    pub fn is_source(self) -> bool {
        matches!(self, Role::Source(_))
    }

    /// The source preference, if any.
    pub fn preference(self) -> Option<Opinion> {
        match self {
            Role::Source(p) => Some(p),
            Role::NonSource => None,
        }
    }
}

/// Static description of a population: size, source counts, and per-round
/// sample size.
///
/// Notation matches the paper: `s0`/`s1` are the numbers of sources
/// preferring 0/1, the *bias* is `s = |s1 − s0| ≥ 1`, and the *correct
/// opinion* is the preference of the strict majority of sources.
///
/// # Example
///
/// ```
/// use np_engine::{opinion::Opinion, population::PopulationConfig};
///
/// let cfg = PopulationConfig::new(100, 2, 5, 10)?; // n=100, s0=2, s1=5, h=10
/// assert_eq!(cfg.bias(), 3);
/// assert_eq!(cfg.correct_opinion(), Opinion::One);
/// assert_eq!(cfg.num_sources(), 7);
/// # Ok::<(), np_engine::EngineError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PopulationConfig {
    n: usize,
    s0: usize,
    s1: usize,
    h: usize,
}

impl PopulationConfig {
    /// Creates a configuration with `n` agents, `s0` sources preferring 0,
    /// `s1` sources preferring 1, and sample size `h`.
    ///
    /// # Errors
    ///
    /// * [`EngineError::BadPopulation`] if `n == 0`, `h == 0`,
    ///   `s0 + s1 > n`, or `s0 + s1 == 0`.
    /// * [`EngineError::TiedSources`] if `s0 == s1` (the paper requires a
    ///   strict majority, `s ≥ 1`).
    pub fn new(n: usize, s0: usize, s1: usize, h: usize) -> Result<Self> {
        if n == 0 {
            return Err(EngineError::BadPopulation {
                detail: "population size n must be positive".into(),
            });
        }
        if h == 0 {
            return Err(EngineError::BadPopulation {
                detail: "sample size h must be positive".into(),
            });
        }
        let sources = s0
            .checked_add(s1)
            .ok_or_else(|| EngineError::BadPopulation {
                detail: "source count overflow".into(),
            })?;
        if sources > n {
            return Err(EngineError::BadPopulation {
                detail: format!("s0 + s1 = {sources} exceeds n = {n}"),
            });
        }
        if sources == 0 {
            return Err(EngineError::BadPopulation {
                detail: "at least one source is required".into(),
            });
        }
        if s0 == s1 {
            return Err(EngineError::TiedSources { count: s0 });
        }
        Ok(PopulationConfig { n, s0, s1, h })
    }

    /// Single agreeing-source shorthand: one source preferring `correct`,
    /// everyone else a non-source.
    ///
    /// # Errors
    ///
    /// Same as [`PopulationConfig::new`].
    pub fn single_source(n: usize, correct: Opinion, h: usize) -> Result<Self> {
        match correct {
            Opinion::Zero => PopulationConfig::new(n, 1, 0, h),
            Opinion::One => PopulationConfig::new(n, 0, 1, h),
        }
    }

    /// Number of agents `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sources preferring 0.
    pub fn s0(&self) -> usize {
        self.s0
    }

    /// Sources preferring 1.
    pub fn s1(&self) -> usize {
        self.s1
    }

    /// Per-round sample size `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Total number of sources `s0 + s1`.
    pub fn num_sources(&self) -> usize {
        self.s0 + self.s1
    }

    /// The bias `s = |s1 − s0| ≥ 1`.
    pub fn bias(&self) -> usize {
        self.s1.abs_diff(self.s0)
    }

    /// The correct opinion: the preference of the strict majority of
    /// sources.
    pub fn correct_opinion(&self) -> Opinion {
        if self.s1 > self.s0 {
            Opinion::One
        } else {
            Opinion::Zero
        }
    }

    /// Returns `true` if the paper's mild source-count assumption
    /// `s0, s1 ≤ n/4` (Eq. (18)) holds; the theorems are stated under it.
    pub fn satisfies_source_assumption(&self) -> bool {
        4 * self.s0 <= self.n && 4 * self.s1 <= self.n
    }

    /// The role of agent `id` under the canonical layout: agents
    /// `0..s1` are 1-sources, `s1..s1+s0` are 0-sources, the rest are
    /// non-sources. (The model is fully symmetric under relabeling —
    /// sampling is uniform — so fixing the layout loses no generality and
    /// keeps runs reproducible.)
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.n()`.
    pub fn role_of(&self, id: usize) -> Role {
        assert!(id < self.n, "agent id {id} out of range {}", self.n);
        if id < self.s1 {
            Role::Source(Opinion::One)
        } else if id < self.s1 + self.s0 {
            Role::Source(Opinion::Zero)
        } else {
            Role::NonSource
        }
    }

    /// Iterates over all roles in agent-id order.
    pub fn iter_roles(&self) -> impl Iterator<Item = Role> + '_ {
        (0..self.n).map(|id| self.role_of(id))
    }

    /// Returns a copy with a different sample size.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadPopulation`] if `h == 0`.
    pub fn with_h(&self, h: usize) -> Result<Self> {
        PopulationConfig::new(self.n, self.s0, self.s1, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configuration() {
        let cfg = PopulationConfig::new(10, 1, 3, 5).unwrap();
        assert_eq!(cfg.n(), 10);
        assert_eq!(cfg.s0(), 1);
        assert_eq!(cfg.s1(), 3);
        assert_eq!(cfg.h(), 5);
        assert_eq!(cfg.num_sources(), 4);
        assert_eq!(cfg.bias(), 2);
        assert_eq!(cfg.correct_opinion(), Opinion::One);
    }

    #[test]
    fn zero_majority_configuration() {
        let cfg = PopulationConfig::new(10, 3, 1, 1).unwrap();
        assert_eq!(cfg.correct_opinion(), Opinion::Zero);
        assert_eq!(cfg.bias(), 2);
    }

    #[test]
    fn invalid_configurations() {
        assert!(PopulationConfig::new(0, 0, 1, 1).is_err());
        assert!(PopulationConfig::new(10, 0, 1, 0).is_err());
        assert!(PopulationConfig::new(10, 6, 5, 1).is_err());
        assert!(PopulationConfig::new(10, 0, 0, 1).is_err());
        assert!(matches!(
            PopulationConfig::new(10, 2, 2, 1),
            Err(EngineError::TiedSources { count: 2 })
        ));
    }

    #[test]
    fn single_source_shorthand() {
        let cfg = PopulationConfig::single_source(50, Opinion::One, 7).unwrap();
        assert_eq!(cfg.s1(), 1);
        assert_eq!(cfg.s0(), 0);
        assert_eq!(cfg.correct_opinion(), Opinion::One);
        let cfg0 = PopulationConfig::single_source(50, Opinion::Zero, 7).unwrap();
        assert_eq!(cfg0.correct_opinion(), Opinion::Zero);
    }

    #[test]
    fn role_layout() {
        let cfg = PopulationConfig::new(6, 2, 1, 1).unwrap();
        let roles: Vec<Role> = cfg.iter_roles().collect();
        assert_eq!(
            roles,
            vec![
                Role::Source(Opinion::One),
                Role::Source(Opinion::Zero),
                Role::Source(Opinion::Zero),
                Role::NonSource,
                Role::NonSource,
                Role::NonSource,
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn role_of_out_of_range() {
        let cfg = PopulationConfig::new(3, 0, 1, 1).unwrap();
        let _ = cfg.role_of(3);
    }

    #[test]
    fn role_helpers() {
        assert!(Role::Source(Opinion::One).is_source());
        assert!(!Role::NonSource.is_source());
        assert_eq!(
            Role::Source(Opinion::Zero).preference(),
            Some(Opinion::Zero)
        );
        assert_eq!(Role::NonSource.preference(), None);
    }

    #[test]
    fn source_assumption() {
        assert!(PopulationConfig::new(100, 5, 10, 1)
            .unwrap()
            .satisfies_source_assumption());
        assert!(!PopulationConfig::new(100, 5, 30, 1)
            .unwrap()
            .satisfies_source_assumption());
    }

    #[test]
    fn with_h_changes_only_h() {
        let cfg = PopulationConfig::new(10, 1, 2, 3).unwrap();
        let cfg2 = cfg.with_h(10).unwrap();
        assert_eq!(cfg2.h(), 10);
        assert_eq!(cfg2.n(), 10);
        assert!(cfg.with_h(0).is_err());
    }
}
