//! Deterministic mid-run fault injection (the Theorem 5 persistence
//! story, measured).
//!
//! The adversary of [`crate::world::World::corrupt_agents`] fires once,
//! before round 0. A [`FaultPlan`] extends that to *scheduled* events: at
//! the start of chosen rounds the world re-corrupts a fraction of agents,
//! flips the sources' preferences (the "trend change" scenario of
//! Korman–Vacus), swaps or ramps the noise level within its δ-bound, or
//! puts agents to sleep (display-only, no update) for a span of rounds.
//!
//! # Determinism contract
//!
//! Every random decision of a fault event is drawn from
//! `streams.rng(agent, StreamStage::Fault(k))` where `k` is the event's
//! index in the plan — the same per-`(seed, round, agent, stage)` streams
//! the round loop uses ([`crate::streams`]). Faulted trajectories and
//! their trace artifacts are therefore byte-identical across thread
//! counts, and a plan is replayable from `(seed, plan)` alone.
//!
//! A round's events are applied just *before* the round executes, so a
//! fault scheduled for round `r` is visible in trace row `r` (rounds are
//! 1-based counts of completed rounds). [`RoundMetrics::faults`] carries
//! one label per event injected that round, and [`recovery_times`]
//! recovers the per-event re-convergence time from a recorded trace.
//!
//! [`RoundMetrics::faults`]: crate::metrics::RoundMetrics::faults

use std::fmt;
use std::sync::Arc;

use crate::streams::StreamRng;
use np_linalg::noise::NoiseMatrix;

use crate::error::EngineError;
use crate::metrics::RoundMetrics;

/// A per-agent state corruption, applied to the fraction of agents a
/// [`FaultEvent::Corrupt`] selects. `S` is the protocol's population
/// state (e.g. `ScalarState<SsfAgent>` or a columnar port).
///
/// Implemented for free by any `Fn(&mut S, usize, &mut StreamRng)` closure.
pub trait StateFault<S>: Send + Sync {
    /// Corrupts agent `id` inside `state`. `rng` is the agent's
    /// [`crate::streams::StreamStage::Fault`] stream for the injection
    /// round (the same generator that selected the agent).
    fn apply(&self, state: &mut S, id: usize, rng: &mut StreamRng);
}

impl<S, F> StateFault<S> for F
where
    F: Fn(&mut S, usize, &mut StreamRng) + Send + Sync,
{
    fn apply(&self, state: &mut S, id: usize, rng: &mut StreamRng) {
        self(state, id, rng)
    }
}

/// One fault event, scheduled for a round by a [`FaultPlan`].
pub enum FaultEvent<S> {
    /// Re-applies a corruption strategy to a random fraction of agents.
    /// Each agent is selected independently with probability `frac` from
    /// its own fault stream; selected agents are then corrupted from the
    /// same stream.
    Corrupt {
        /// Probability that each agent is corrupted, in `[0, 1]`.
        frac: f64,
        /// A short stable name for trace labels (e.g. the
        /// `SsfAdversary` name).
        label: String,
        /// The corruption applied to each selected agent.
        fault: Arc<dyn StateFault<S>>,
    },
    /// Inverts every source's preference — the environment's ground truth
    /// flips mid-run ("trend change"). The world's notion of the correct
    /// opinion flips with it.
    FlipSources,
    /// Replaces the noise matrix (and rebuilds the channel) from this
    /// round on. The new matrix must have the protocol's alphabet size.
    SetNoise {
        /// The replacement noise matrix.
        noise: NoiseMatrix,
    },
    /// Linearly ramps a uniform-δ noise matrix from level `from` to level
    /// `to` over `over` rounds, rebuilding the channel each round. The
    /// injection round runs at `from`; round `injection + over` runs at
    /// `to`, where the level then stays.
    RampNoise {
        /// Uniform noise level at the injection round.
        from: f64,
        /// Uniform noise level after the ramp completes.
        to: f64,
        /// Number of rounds the ramp spans (≥ 1).
        over: u64,
    },
    /// Puts a random fraction of agents to sleep for `rounds` rounds:
    /// they keep displaying their current state but skip their updates
    /// entirely (no update randomness is drawn for them).
    Sleep {
        /// Probability that each agent falls asleep, in `[0, 1]`.
        frac: f64,
        /// How many rounds the sleep lasts (≥ 1), starting with the
        /// injection round.
        rounds: u64,
    },
}

impl<S> Clone for FaultEvent<S> {
    fn clone(&self) -> Self {
        match self {
            FaultEvent::Corrupt { frac, label, fault } => FaultEvent::Corrupt {
                frac: *frac,
                label: label.clone(),
                fault: Arc::clone(fault),
            },
            FaultEvent::FlipSources => FaultEvent::FlipSources,
            FaultEvent::SetNoise { noise } => FaultEvent::SetNoise {
                noise: noise.clone(),
            },
            FaultEvent::RampNoise { from, to, over } => FaultEvent::RampNoise {
                from: *from,
                to: *to,
                over: *over,
            },
            FaultEvent::Sleep { frac, rounds } => FaultEvent::Sleep {
                frac: *frac,
                rounds: *rounds,
            },
        }
    }
}

impl<S> fmt::Debug for FaultEvent<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::Corrupt { frac, label, .. } => f
                .debug_struct("Corrupt")
                .field("frac", frac)
                .field("label", label)
                .finish_non_exhaustive(),
            FaultEvent::FlipSources => f.write_str("FlipSources"),
            FaultEvent::SetNoise { noise } => {
                f.debug_struct("SetNoise").field("noise", noise).finish()
            }
            FaultEvent::RampNoise { from, to, over } => f
                .debug_struct("RampNoise")
                .field("from", from)
                .field("to", to)
                .field("over", over)
                .finish(),
            FaultEvent::Sleep { frac, rounds } => f
                .debug_struct("Sleep")
                .field("frac", frac)
                .field("rounds", rounds)
                .finish(),
        }
    }
}

/// A fault event bound to its injection round.
pub struct ScheduledFault<S> {
    /// The 1-based round the event fires at: it is applied just before
    /// this round executes and shows up in trace row `round`.
    pub round: u64,
    /// The event itself.
    pub event: FaultEvent<S>,
}

impl<S> Clone for ScheduledFault<S> {
    fn clone(&self) -> Self {
        ScheduledFault {
            round: self.round,
            event: self.event.clone(),
        }
    }
}

impl<S> fmt::Debug for ScheduledFault<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduledFault")
            .field("round", &self.round)
            .field("event", &self.event)
            .finish()
    }
}

/// A schedule of mid-run fault events, kept sorted by injection round.
///
/// Build with the [`FaultPlan::at`] chain and attach to a world with
/// `World::set_fault_plan`, which validates it against the world's
/// current round and alphabet.
///
/// # Example
///
/// ```
/// use np_engine::faults::{FaultEvent, FaultPlan};
/// use np_engine::protocol::ScalarState;
/// # struct A;
/// let plan: FaultPlan<ScalarState<A>> = FaultPlan::new()
///     .at(10, FaultEvent::FlipSources)
///     .at(5, FaultEvent::Sleep { frac: 0.5, rounds: 3 });
/// assert_eq!(plan.events()[0].round, 5);
/// ```
pub struct FaultPlan<S> {
    events: Vec<ScheduledFault<S>>,
}

impl<S> FaultPlan<S> {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Schedules `event` for `round`, keeping the plan sorted. Events
    /// scheduled for the same round fire in insertion order.
    #[must_use]
    pub fn at(mut self, round: u64, event: FaultEvent<S>) -> Self {
        let pos = self.events.partition_point(|e| e.round <= round);
        self.events.insert(pos, ScheduledFault { round, event });
        self
    }

    /// The scheduled events, sorted by round.
    pub fn events(&self) -> &[ScheduledFault<S>] {
        &self.events
    }

    /// Consumes the plan into its sorted event list (the world's
    /// internal representation).
    pub fn into_events(self) -> Vec<ScheduledFault<S>> {
        self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the plan against the world it is being attached to:
    /// `current_round` is the world's count of completed rounds and `d`
    /// its alphabet size. Every event must fire strictly in the future,
    /// fractions must be probabilities, spans must be ≥ 1 round, and
    /// noise levels must yield valid `d`-symbol matrices.
    pub fn validate(&self, current_round: u64, d: usize) -> crate::Result<()> {
        self.validate_from(0, current_round, d)
    }

    /// Like [`FaultPlan::validate`], but only checks events from index
    /// `cursor` on. Used when re-attaching a plan to a restored world:
    /// events before the snapshot's fault cursor have already fired, so
    /// their rounds legitimately lie in the past.
    pub fn validate_from(&self, cursor: usize, current_round: u64, d: usize) -> crate::Result<()> {
        let bad = |detail: String| Err(EngineError::BadFaultPlan { detail });
        for (idx, scheduled) in self.events.iter().enumerate().skip(cursor) {
            if scheduled.round <= current_round {
                return bad(format!(
                    "event {idx} scheduled for round {} but the world is already at round \
                     {current_round}",
                    scheduled.round
                ));
            }
            match &scheduled.event {
                FaultEvent::Corrupt { frac, label, .. } => {
                    if !(0.0..=1.0).contains(frac) {
                        return bad(format!("corrupt '{label}' fraction {frac} outside [0, 1]"));
                    }
                }
                FaultEvent::FlipSources => {}
                FaultEvent::SetNoise { noise } => {
                    if noise.dim() != d {
                        return bad(format!(
                            "set-noise matrix has {} symbols, protocol uses {d}",
                            noise.dim()
                        ));
                    }
                }
                FaultEvent::RampNoise { from, to, over } => {
                    if *over == 0 {
                        return bad("noise ramp must span at least one round".into());
                    }
                    for level in [from, to] {
                        if let Err(e) = NoiseMatrix::uniform(d, *level) {
                            return bad(format!("noise ramp endpoint {level} invalid: {e}"));
                        }
                    }
                }
                FaultEvent::Sleep { frac, rounds } => {
                    if !(0.0..=1.0).contains(frac) {
                        return bad(format!("sleep fraction {frac} outside [0, 1]"));
                    }
                    if *rounds == 0 {
                        return bad("sleep must span at least one round".into());
                    }
                }
            }
        }
        Ok(())
    }
}

impl<S> Default for FaultPlan<S> {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl<S> Clone for FaultPlan<S> {
    fn clone(&self) -> Self {
        FaultPlan {
            events: self.events.clone(),
        }
    }
}

impl<S> fmt::Debug for FaultPlan<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("events", &self.events)
            .finish()
    }
}

/// The re-convergence record of one injected fault event, derived from a
/// recorded trace by [`recovery_times`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecovery {
    /// The round the event was injected at.
    pub round: u64,
    /// The event's trace label.
    pub label: String,
    /// The first round at (or after) the injection from which consensus
    /// on the correct opinion held through the rest of the event's
    /// observation window — `None` if the run never re-stabilized before
    /// the window closed (next fault or end of trace).
    pub recovered_round: Option<u64>,
}

impl FaultRecovery {
    /// Rounds from injection back to stable consensus: `0` means the
    /// event never broke consensus; `None` means it never recovered
    /// within its window.
    pub fn recovery_rounds(&self) -> Option<u64> {
        self.recovered_round.map(|r| r - self.round)
    }
}

/// Computes per-event re-convergence times from a recorded trace.
///
/// Each faulted round opens an observation window running up to the next
/// faulted round (exclusive) or the end of the trace. The recovery round
/// is the first round in the window from which every remaining window
/// round has all agents correct — "stable consensus", not a transient
/// all-correct blip. Events sharing an injection round share a window and
/// therefore a recovery round.
pub fn recovery_times(rounds: &[RoundMetrics]) -> Vec<FaultRecovery> {
    let fault_rows: Vec<usize> = (0..rounds.len())
        .filter(|&i| !rounds[i].faults.is_empty())
        .collect();
    let mut out = Vec::new();
    for (which, &row) in fault_rows.iter().enumerate() {
        let window_end = fault_rows.get(which + 1).copied().unwrap_or(rounds.len());
        // Scan the window backwards: the recovery row is the start of the
        // all-correct suffix, provided that suffix is nonempty.
        let mut recovered = None;
        for i in (row..window_end).rev() {
            if rounds[i].correct == rounds[i].n {
                recovered = Some(rounds[i].round);
            } else {
                break;
            }
        }
        for label in &rounds[row].faults {
            out.push(FaultRecovery {
                round: rounds[row].round,
                label: label.clone(),
                recovered_round: recovered,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    type S = Vec<u8>;

    fn corrupt_event(frac: f64) -> FaultEvent<S> {
        FaultEvent::Corrupt {
            frac,
            label: "zero".into(),
            fault: Arc::new(|state: &mut S, id: usize, _rng: &mut StreamRng| {
                state[id] = 0;
            }),
        }
    }

    #[test]
    fn plan_keeps_events_sorted_and_stable() {
        let plan: FaultPlan<S> = FaultPlan::new()
            .at(20, FaultEvent::FlipSources)
            .at(5, corrupt_event(0.5))
            .at(
                20,
                FaultEvent::Sleep {
                    frac: 0.1,
                    rounds: 2,
                },
            )
            .at(
                1,
                FaultEvent::RampNoise {
                    from: 0.1,
                    to: 0.3,
                    over: 4,
                },
            );
        let rounds: Vec<u64> = plan.events().iter().map(|e| e.round).collect();
        assert_eq!(rounds, vec![1, 5, 20, 20]);
        // Same-round events keep insertion order: FlipSources before Sleep.
        assert!(matches!(plan.events()[2].event, FaultEvent::FlipSources));
        assert!(matches!(plan.events()[3].event, FaultEvent::Sleep { .. }));
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert!(FaultPlan::<S>::default().is_empty());
    }

    #[test]
    fn validate_accepts_a_sound_plan() {
        let plan: FaultPlan<S> = FaultPlan::new()
            .at(3, corrupt_event(1.0))
            .at(4, FaultEvent::FlipSources)
            .at(
                5,
                FaultEvent::SetNoise {
                    noise: NoiseMatrix::uniform(4, 0.2).unwrap(),
                },
            )
            .at(
                6,
                FaultEvent::RampNoise {
                    from: 0.1,
                    to: 0.2,
                    over: 3,
                },
            )
            .at(
                7,
                FaultEvent::Sleep {
                    frac: 0.5,
                    rounds: 2,
                },
            );
        assert!(plan.validate(2, 4).is_ok());
    }

    #[test]
    fn validate_rejects_past_rounds() {
        let plan: FaultPlan<S> = FaultPlan::new().at(3, FaultEvent::FlipSources);
        assert!(plan.validate(3, 4).is_err());
        assert!(plan.validate(2, 4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let cases: Vec<FaultPlan<S>> = vec![
            FaultPlan::new().at(5, corrupt_event(1.5)),
            FaultPlan::new().at(
                5,
                FaultEvent::Sleep {
                    frac: -0.1,
                    rounds: 2,
                },
            ),
            FaultPlan::new().at(
                5,
                FaultEvent::Sleep {
                    frac: 0.5,
                    rounds: 0,
                },
            ),
            FaultPlan::new().at(
                5,
                FaultEvent::RampNoise {
                    from: 0.1,
                    to: 0.2,
                    over: 0,
                },
            ),
            FaultPlan::new().at(
                5,
                FaultEvent::RampNoise {
                    from: 0.1,
                    to: 0.9,
                    over: 3,
                },
            ),
            FaultPlan::new().at(
                5,
                FaultEvent::SetNoise {
                    noise: NoiseMatrix::uniform(2, 0.1).unwrap(),
                },
            ),
        ];
        for (i, plan) in cases.iter().enumerate() {
            let err = plan.validate(0, 4).unwrap_err();
            assert!(
                matches!(err, EngineError::BadFaultPlan { .. }),
                "case {i}: {err}"
            );
        }
    }

    #[test]
    fn closures_are_state_faults() {
        let mut state: S = vec![7; 4];
        let event = corrupt_event(1.0);
        let FaultEvent::Corrupt { fault, .. } = &event else {
            unreachable!()
        };
        let mut rng = StreamRng::seed_from_u64(0);
        fault.apply(&mut state, 2, &mut rng);
        assert_eq!(state, vec![7, 7, 0, 7]);
        // The rng parameter is usable inside a fault.
        let drawing: Arc<dyn StateFault<S>> =
            Arc::new(|state: &mut S, id: usize, rng: &mut StreamRng| {
                state[id] = rng.gen();
            });
        drawing.apply(&mut state, 0, &mut rng);
    }

    #[test]
    fn events_clone_and_debug() {
        let event = corrupt_event(0.25);
        let cloned = event.clone();
        assert!(format!("{cloned:?}").contains("Corrupt"));
        assert!(format!("{:?}", FaultEvent::<S>::FlipSources).contains("FlipSources"));
        let plan: FaultPlan<S> = FaultPlan::new().at(2, event);
        let plan2 = plan.clone();
        assert_eq!(plan2.len(), 1);
        assert!(format!("{plan2:?}").contains("FaultPlan"));
    }

    fn metrics(round: u64, correct: usize, faults: &[&str]) -> RoundMetrics {
        RoundMetrics {
            round,
            n: 10,
            correct,
            stages: vec![(0, 10)],
            weak_formed: 0,
            weak_correct: 0,
            faults: faults.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn recovery_times_finds_stable_suffix() {
        let trace = vec![
            metrics(1, 10, &[]),
            metrics(2, 3, &["hit"]),
            metrics(3, 6, &[]),
            metrics(4, 10, &[]),
            metrics(5, 10, &[]),
        ];
        let rec = recovery_times(&trace);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].round, 2);
        assert_eq!(rec[0].label, "hit");
        assert_eq!(rec[0].recovered_round, Some(4));
        assert_eq!(rec[0].recovery_rounds(), Some(2));
    }

    #[test]
    fn recovery_ignores_transient_blips() {
        // All-correct at round 3 but broken again at 4: not stable.
        let trace = vec![
            metrics(2, 3, &["hit"]),
            metrics(3, 10, &[]),
            metrics(4, 6, &[]),
            metrics(5, 10, &[]),
        ];
        let rec = recovery_times(&trace);
        assert_eq!(rec[0].recovered_round, Some(5));
    }

    #[test]
    fn recovery_is_zero_when_consensus_never_breaks() {
        let trace = vec![metrics(5, 10, &["soft"]), metrics(6, 10, &[])];
        let rec = recovery_times(&trace);
        assert_eq!(rec[0].recovery_rounds(), Some(0));
    }

    #[test]
    fn recovery_is_none_when_window_never_stabilizes() {
        let trace = vec![metrics(5, 2, &["hard"]), metrics(6, 4, &[])];
        let rec = recovery_times(&trace);
        assert_eq!(rec[0].recovered_round, None);
        assert_eq!(rec[0].recovery_rounds(), None);
    }

    #[test]
    fn windows_close_at_the_next_fault() {
        let trace = vec![
            metrics(1, 4, &["a"]),
            metrics(2, 10, &[]),
            // Round 3 injects two events at once: both share the window.
            metrics(3, 5, &["b", "c"]),
            metrics(4, 10, &[]),
        ];
        let rec = recovery_times(&trace);
        assert_eq!(rec.len(), 3);
        // Event "a"'s window is rounds 1..3 — recovered at round 2.
        assert_eq!(
            (rec[0].label.as_str(), rec[0].recovered_round),
            ("a", Some(2))
        );
        assert_eq!(
            (rec[1].label.as_str(), rec[1].recovered_round),
            ("b", Some(4))
        );
        assert_eq!(
            (rec[2].label.as_str(), rec[2].recovered_round),
            ("c", Some(4))
        );
        assert_eq!(rec[1].recovery_rounds(), Some(1));
    }

    #[test]
    fn empty_trace_yields_no_recoveries() {
        assert!(recovery_times(&[]).is_empty());
        assert!(recovery_times(&[metrics(1, 10, &[])]).is_empty());
    }
}
