//! Multi-seed batch execution across threads.
//!
//! Experiments estimate convergence-time distributions by repeating a run
//! over many seeds. [`run_batch`] fans a seed sequence out over worker
//! threads (crossbeam scoped threads; results land in seed order, so output
//! is independent of thread scheduling).

use np_stats::seeds::SeedSequence;

/// Runs `job` once per derived seed, in parallel, returning results in seed
/// order.
///
/// * `seeds` — a [`SeedSequence`]; run `i` receives `seeds.seed_at(i)`.
/// * `runs` — number of runs.
/// * `threads` — worker count; clamped to `[1, runs]`. Pass
///   [`suggested_threads`]`()` for a sensible default.
///
/// Determinism: results depend only on `(seeds, runs, job)`, not on
/// `threads` or scheduling.
///
/// # Example
///
/// ```
/// use np_engine::runner::run_batch;
/// use np_stats::seeds::SeedSequence;
///
/// let out = run_batch(SeedSequence::new(1), 8, 4, |seed| seed % 10);
/// assert_eq!(out.len(), 8);
/// let serial = run_batch(SeedSequence::new(1), 8, 1, |seed| seed % 10);
/// assert_eq!(out, serial);
/// ```
pub fn run_batch<T, F>(seeds: SeedSequence, runs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, runs);
    if threads == 1 {
        return (0..runs).map(|i| job(seeds.seed_at(i as u64))).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    // Hand each worker a disjoint set of result slots via chunked stealing:
    // a mutex-free design would need unsafe; instead collect (index, value)
    // pairs per worker and scatter afterwards.
    let results: Vec<Vec<(usize, T)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let job = &job;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        local.push((i, job(seeds.seed_at(i as u64))));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope panicked");
    for (i, value) in results.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled exactly once"))
        .collect()
}

/// A reasonable worker count: available parallelism minus one (leave a core
/// for the OS), at least 1.
pub fn suggested_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch() {
        let out: Vec<u64> = run_batch(SeedSequence::new(0), 0, 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn results_in_seed_order() {
        let seeds = SeedSequence::new(5);
        let out = run_batch(seeds, 16, 4, |s| s);
        let expected: Vec<u64> = (0..16).map(|i| seeds.seed_at(i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_equals_serial() {
        let seeds = SeedSequence::new(77);
        let serial = run_batch(seeds, 25, 1, |s| s.wrapping_mul(3));
        for threads in [2, 3, 8, 64] {
            let parallel = run_batch(seeds, 25, threads, |s| s.wrapping_mul(3));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn jobs_actually_run_concurrently_without_corruption() {
        // Heavier job: checks no result slot is lost or duplicated.
        let out = run_batch(SeedSequence::new(9), 100, 8, |s| {
            let mut x = s;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        });
        assert_eq!(out.len(), 100);
        let set: std::collections::HashSet<u64> = out.iter().copied().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn suggested_threads_is_positive() {
        assert!(suggested_threads() >= 1);
    }
}
