//! Multi-seed batch execution across threads.
//!
//! Experiments estimate convergence-time distributions by repeating a run
//! over many seeds. [`run_batch`] fans a seed sequence out over worker
//! threads (std scoped threads; results land in seed order, so output is
//! independent of thread scheduling). [`scatter`] is the lower-level
//! primitive behind the world's intra-round chunk parallelism: it runs a
//! fixed set of independent jobs across scoped workers and re-raises the
//! original panic payload if one fails.

use std::sync::atomic::{AtomicUsize, Ordering};

use np_stats::seeds::SeedSequence;

/// Runs every job in `jobs` exactly once across at most `threads` scoped
/// worker threads, in unspecified order. Jobs must be independent: the
/// caller guarantees correctness does not depend on execution order
/// (the world achieves this with per-agent RNG streams and disjoint
/// chunk views).
///
/// `threads` is clamped to `[1, jobs.len()]`; with one thread the jobs run
/// inline on the caller with no thread machinery.
///
/// # Panics
///
/// If a job panics, the original panic payload is re-raised on the calling
/// thread once all workers have stopped — so invariant-violation messages
/// survive the thread boundary intact.
pub fn scatter<J, F>(threads: usize, jobs: Vec<J>, run: F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        for job in jobs {
            run(job);
        }
        return;
    }
    // Round-robin assignment: with one chunk per thread (the world's
    // layout) every worker gets exactly one job; results never depend on
    // the assignment either way.
    let mut queues: Vec<Vec<J>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % threads].push(job);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .into_iter()
            .map(|queue| {
                let run = &run;
                scope.spawn(move || {
                    for job in queue {
                        run(job);
                    }
                })
            })
            .collect();
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
}

/// Runs `job` once per derived seed, in parallel, returning results in seed
/// order.
///
/// * `seeds` — a [`SeedSequence`]; run `i` receives `seeds.seed_at(i)`.
/// * `runs` — number of runs.
/// * `threads` — worker count; clamped to `[1, runs]`. Pass
///   [`suggested_threads`]`()` for a sensible default.
///
/// Determinism: results depend only on `(seeds, runs, job)`, not on
/// `threads` or scheduling.
///
/// # Panics
///
/// If `job` panics for some seed, the panic is re-raised on the calling
/// thread with the offending run index and seed in the message, so a
/// failing experiment can be reproduced with a single serial run.
///
/// # Example
///
/// ```
/// use np_engine::runner::run_batch;
/// use np_stats::seeds::SeedSequence;
///
/// let out = run_batch(SeedSequence::new(1), 8, 4, |seed| seed % 10);
/// assert_eq!(out.len(), 8);
/// let serial = run_batch(SeedSequence::new(1), 8, 1, |seed| seed % 10);
/// assert_eq!(out, serial);
/// ```
pub fn run_batch<T, F>(seeds: SeedSequence, runs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, runs);
    if threads == 1 {
        return (0..runs).map(|i| job(seeds.seed_at(i as u64))).collect();
    }
    let next = AtomicUsize::new(0);
    // Each worker records the run index it is currently executing, so a
    // panicking job can be attributed to a concrete (index, seed) pair.
    let claimed: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let mut slots: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    // Hand each worker indices via an atomic cursor: collect (index, value)
    // pairs per worker and scatter afterwards, so output order never
    // depends on scheduling.
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let job = &job;
                let claimed = &claimed[worker];
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        claimed.store(i, Ordering::Relaxed);
                        let value = job(seeds.seed_at(i as u64));
                        // Clear the claim once the job returns, so a panic
                        // raised between claims (however unlikely) is not
                        // pinned on the previously finished run.
                        claimed.store(usize::MAX, Ordering::Relaxed);
                        local.push((i, value));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(worker, handle)| match handle.join() {
                Ok(local) => local,
                Err(payload) => {
                    let index = claimed[worker].load(Ordering::Relaxed);
                    let detail = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    if index == usize::MAX {
                        panic!(
                            "run_batch worker {worker} panicked between runs \
                             (no job claimed): {detail}"
                        );
                    }
                    panic!(
                        "run_batch worker {worker} panicked on run index {index} \
                         (seed {}): {detail}",
                        seeds.seed_at(index as u64)
                    );
                }
            })
            .collect()
    });
    for (i, value) in per_worker.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(value) => value,
            // All workers joined cleanly and the cursor covered 0..runs.
            None => unreachable!("run index {i} produced no result"),
        })
        .collect()
}

/// The environment variable overriding [`suggested_threads`], for CI and
/// reproducibility audits (`NOISY_PULL_THREADS=1` forces serial batches).
pub const THREADS_ENV_VAR: &str = "NOISY_PULL_THREADS";

/// A reasonable worker count: the [`THREADS_ENV_VAR`] override when set to
/// a positive integer, otherwise available parallelism minus one (leave a
/// core for the OS), at least 1.
///
/// [`run_batch`] output never depends on the thread count, but pinning it
/// makes timing-sensitive CI runs comparable across machines.
pub fn suggested_threads() -> usize {
    if let Some(threads) = std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&threads| threads >= 1)
    {
        return threads;
    }
    std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch() {
        let out: Vec<u64> = run_batch(SeedSequence::new(0), 0, 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn results_in_seed_order() {
        let seeds = SeedSequence::new(5);
        let out = run_batch(seeds, 16, 4, |s| s);
        let expected: Vec<u64> = (0..16).map(|i| seeds.seed_at(i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_equals_serial() {
        let seeds = SeedSequence::new(77);
        let serial = run_batch(seeds, 25, 1, |s| s.wrapping_mul(3));
        for threads in [2, 3, 8, 64] {
            let parallel = run_batch(seeds, 25, threads, |s| s.wrapping_mul(3));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn jobs_actually_run_concurrently_without_corruption() {
        // Heavier job: checks no result slot is lost or duplicated.
        let out = run_batch(SeedSequence::new(9), 100, 8, |s| {
            let mut x = s;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        });
        assert_eq!(out.len(), 100);
        let set: std::collections::HashSet<u64> = out.iter().copied().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    #[should_panic(expected = "panicked on run index")]
    fn worker_panic_reports_run_index() {
        let seeds = SeedSequence::new(4);
        let bad_seed = seeds.seed_at(7);
        run_batch(seeds, 16, 4, |s| {
            assert_ne!(s, bad_seed, "deliberate failure");
            s
        });
    }

    #[test]
    fn suggested_threads_is_positive() {
        assert!(suggested_threads() >= 1);
    }

    #[test]
    fn scatter_runs_every_job_exactly_once() {
        use std::sync::atomic::AtomicU64;
        for threads in [1, 2, 3, 7, 16] {
            let hits: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(0)).collect();
            let jobs: Vec<usize> = (0..10).collect();
            scatter(threads, jobs, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "job {i}, threads {threads}");
            }
        }
    }

    #[test]
    fn scatter_handles_empty_job_list() {
        scatter(4, Vec::<usize>::new(), |_| unreachable!("no jobs"));
    }

    #[test]
    #[should_panic(expected = "chunk 3 exploded")]
    fn scatter_preserves_panic_payload_across_threads() {
        let jobs: Vec<usize> = (0..8).collect();
        scatter(4, jobs, |i| {
            assert!(i != 3, "chunk {i} exploded");
        });
    }

    #[test]
    fn suggested_threads_honors_env_override() {
        // Serialized within this one test; other tests only assert
        // positivity, which holds under any override value.
        std::env::set_var(THREADS_ENV_VAR, "3");
        assert_eq!(suggested_threads(), 3);
        std::env::set_var(THREADS_ENV_VAR, "0");
        assert!(suggested_threads() >= 1, "invalid override falls back");
        std::env::set_var(THREADS_ENV_VAR, "not a number");
        assert!(suggested_threads() >= 1, "unparsable override falls back");
        std::env::remove_var(THREADS_ENV_VAR);
    }
}
