//! Graph-restricted PULL: who an agent is allowed to observe.
//!
//! The paper's analysis — and everything in this repo up to PR 8 —
//! assumes uniform PULL over the *complete* graph: every agent samples
//! its `h` observations from the whole population. This module introduces
//! the [`Topology`] seam that restricts sampling to a neighborhood:
//!
//! - [`TopologySpec::Complete`] — the default. No neighbor lists are
//!   materialized and the engine's hot path is byte-identical to the
//!   topology-free code.
//! - [`TopologySpec::Ring`]`{ k }` — the circulant graph where agent `i`
//!   is adjacent to `i ± 1, …, i ± k` (mod `n`); degree `2k`.
//! - [`TopologySpec::RandomRegular`]`{ d }` — a random simple `d`-regular
//!   graph from the configuration model (pair random stubs, then repair
//!   self-loops and multi-edges by degree-preserving edge switches).
//! - [`TopologySpec::PowerLaw`]`{ alpha }` — degrees drawn from a
//!   truncated Pareto law `P(D ≥ x) ∝ x^{-(α-1)}`, clamped to
//!   `[1, n-1]`, realized with the same stub-pairing machinery.
//!
//! Generation is a pure function of `(spec, n, master seed)`: every
//! random draw comes from the dedicated [`StreamStage::Topology`] streams
//! (degree of agent `i` from stream `i`; the shuffle and repair walk from
//! stream `n`, which no agent owns), so the same seed always yields the
//! same graph — across processes, thread counts and platforms. The
//! [`Topology::csr_bytes`] serialization pins that contract in tests.
//!
//! Neighbor lists are stored in a CSR-style layout — one flat `Vec<u32>`
//! of neighbors plus an `n + 1` offset table — so the channel's
//! per-neighborhood sampling reads each agent's neighbors as one
//! contiguous, sorted slice.

use std::collections::BTreeSet;

use rand::Rng;

use crate::streams::{RoundStreams, StreamStage};
use crate::{EngineError, Result};

fn bad(detail: impl Into<String>) -> EngineError {
    EngineError::BadTopology {
        detail: detail.into(),
    }
}

/// Which graph the PULL samples are restricted to. Parsed from the CLI /
/// sweep-spec syntax `complete | ring:K | regular:D | powerlaw:A`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// Uniform PULL over all `n` agents (the paper's model; the default).
    Complete,
    /// Circulant ring: agent `i` sees `i ± 1, …, i ± k` (mod `n`).
    Ring {
        /// Half-width of the neighborhood; the degree is `2k`.
        k: usize,
    },
    /// Random simple `d`-regular graph (configuration model + repair).
    RandomRegular {
        /// The common degree.
        d: usize,
    },
    /// Random graph with truncated-Pareto degrees, exponent `alpha`.
    PowerLaw {
        /// Pareto exponent; must exceed 1. Smaller ⇒ heavier tail.
        alpha: f64,
    },
}

impl TopologySpec {
    /// Parses the `complete | ring:K | regular:D | powerlaw:A` syntax.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadTopology`] for unknown kinds or
    /// out-of-domain parameters (`ring:0`, `regular:0`, `powerlaw:1.0`).
    pub fn parse(text: &str) -> Result<Self> {
        let (kind, param) = match text.split_once(':') {
            Some((kind, param)) => (kind, Some(param)),
            None => (text, None),
        };
        match (kind, param) {
            ("complete", None) => Ok(TopologySpec::Complete),
            ("ring", Some(p)) => {
                let k: usize = p
                    .parse()
                    .map_err(|_| bad(format!("ring half-width `{p}` is not an integer")))?;
                if k == 0 {
                    return Err(bad("ring half-width must be at least 1"));
                }
                Ok(TopologySpec::Ring { k })
            }
            ("regular", Some(p)) => {
                let d: usize = p
                    .parse()
                    .map_err(|_| bad(format!("regular degree `{p}` is not an integer")))?;
                if d == 0 {
                    return Err(bad("regular degree must be at least 1"));
                }
                Ok(TopologySpec::RandomRegular { d })
            }
            ("powerlaw", Some(p)) => {
                let alpha: f64 = p
                    .parse()
                    .map_err(|_| bad(format!("power-law exponent `{p}` is not a number")))?;
                if !alpha.is_finite() || alpha <= 1.0 {
                    return Err(bad(format!(
                        "power-law exponent must be a finite number > 1, got {p}"
                    )));
                }
                Ok(TopologySpec::PowerLaw { alpha })
            }
            _ => Err(bad(format!(
                "unknown topology `{text}` (expected complete, ring:K, regular:D or powerlaw:A)"
            ))),
        }
    }

    /// The canonical spec string (`parse(label())` round-trips).
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Complete => "complete".to_string(),
            TopologySpec::Ring { k } => format!("ring:{k}"),
            TopologySpec::RandomRegular { d } => format!("regular:{d}"),
            TopologySpec::PowerLaw { alpha } => format!("powerlaw:{alpha}"),
        }
    }

    /// Whether this is the complete graph (the zero-cost default path).
    pub fn is_complete(&self) -> bool {
        matches!(self, TopologySpec::Complete)
    }
}

/// A built graph: the spec it came from plus CSR neighbor lists.
///
/// [`TopologySpec::Complete`] stores no lists at all — `is_complete()`
/// is the branch the engine takes to stay on the unrestricted hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    spec: TopologySpec,
    n: usize,
    /// CSR offsets: agent `i`'s neighbors are
    /// `neighbors[offsets[i]..offsets[i + 1]]`. Empty for Complete.
    offsets: Vec<usize>,
    /// Flat neighbor array, sorted within each agent's slice.
    neighbors: Vec<u32>,
    min_degree: usize,
    max_degree: usize,
}

impl Topology {
    /// Builds the graph for `spec` over `n` agents, deterministically
    /// from `seed` (the world's master seed).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadTopology`] when the spec cannot cover
    /// the population (ring wider than the cycle, degree ≥ n, odd total
    /// stub count, or a degree sequence the switch repair cannot realize
    /// as a simple graph).
    pub fn build(spec: TopologySpec, n: usize, seed: u64) -> Result<Self> {
        if n == 0 {
            return Err(bad("topology over an empty population"));
        }
        match spec {
            TopologySpec::Complete => Ok(Topology {
                spec,
                n,
                offsets: Vec::new(),
                neighbors: Vec::new(),
                min_degree: n - 1,
                max_degree: n - 1,
            }),
            TopologySpec::Ring { k } => {
                if 2 * k > n.saturating_sub(1) {
                    return Err(bad(format!(
                        "ring:{k} needs at least {} agents (degree 2k = {} must stay below n)",
                        2 * k + 1,
                        2 * k
                    )));
                }
                let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n);
                for i in 0..n {
                    let mut row: Vec<u32> = (1..=k)
                        .flat_map(|j| [(i + j) % n, (i + n - j) % n])
                        .map(|v| v as u32)
                        .collect();
                    row.sort_unstable();
                    lists.push(row);
                }
                Ok(Topology::from_lists(spec, n, lists))
            }
            TopologySpec::RandomRegular { d } => {
                if d >= n {
                    return Err(bad(format!("regular:{d} needs degree below n (n = {n})")));
                }
                if !(n * d).is_multiple_of(2) {
                    return Err(bad(format!(
                        "regular:{d} over n = {n} agents has an odd stub count (n·d must be even)"
                    )));
                }
                let degrees = vec![d; n];
                let lists = realize_degrees(&degrees, n, seed)?;
                Ok(Topology::from_lists(spec, n, lists))
            }
            TopologySpec::PowerLaw { alpha } => {
                if n < 2 {
                    return Err(bad("powerlaw needs at least 2 agents"));
                }
                let streams = RoundStreams::new(seed, 0);
                let mut degrees: Vec<usize> = (0..n)
                    .map(|i| {
                        let mut rng = streams.rng(i, StreamStage::Topology);
                        // Truncated Pareto with x_min = 1:
                        // D = ⌊u^{-1/(α-1)}⌋ clamped to [1, n-1].
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let raw = u.powf(-1.0 / (alpha - 1.0));
                        (raw.floor() as usize).clamp(1, n - 1)
                    })
                    .collect();
                if degrees.iter().sum::<usize>() % 2 != 0 {
                    // Parity fix: one extra stub on the first agent that
                    // can take it (deterministic, degree-sequence local).
                    let i = degrees
                        .iter()
                        .position(|&d| d < n - 1)
                        .ok_or_else(|| bad("powerlaw parity fix impossible (all degrees maxed)"))?;
                    degrees[i] += 1;
                }
                let lists = realize_degrees(&degrees, n, seed)?;
                Ok(Topology::from_lists(spec, n, lists))
            }
        }
    }

    fn from_lists(spec: TopologySpec, n: usize, lists: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0);
        let mut min_degree = usize::MAX;
        let mut max_degree = 0;
        for row in &lists {
            min_degree = min_degree.min(row.len());
            max_degree = max_degree.max(row.len());
            neighbors.extend_from_slice(row);
            offsets.push(neighbors.len());
        }
        Topology {
            spec,
            n,
            offsets,
            neighbors,
            min_degree,
            max_degree,
        }
    }

    /// The spec this graph was built from.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// Population size the graph covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether this is the complete graph (no neighbor lists stored).
    pub fn is_complete(&self) -> bool {
        self.spec.is_complete()
    }

    /// Agent `i`'s sorted neighbor slice.
    ///
    /// # Panics
    ///
    /// Panics for [`TopologySpec::Complete`] (no lists are materialized —
    /// callers must branch on [`Topology::is_complete`] first) and for
    /// out-of-range agents.
    pub fn neighbors(&self, agent: usize) -> &[u32] {
        assert!(
            !self.is_complete(),
            "complete topology has no materialized neighbor lists"
        );
        &self.neighbors[self.offsets[agent]..self.offsets[agent + 1]]
    }

    /// Agent `i`'s degree (`n - 1` for Complete).
    pub fn degree(&self, agent: usize) -> usize {
        if self.is_complete() {
            self.n - 1
        } else {
            self.offsets[agent + 1] - self.offsets[agent]
        }
    }

    /// The smallest degree in the graph.
    pub fn min_degree(&self) -> usize {
        self.min_degree
    }

    /// The largest degree in the graph.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// A canonical little-endian byte rendering of the CSR layout
    /// (`n`, offsets, neighbors). Two topologies are the same graph iff
    /// their bytes agree — the determinism tests pin same-seed equality.
    pub fn csr_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (1 + self.offsets.len()) + 4 * self.neighbors.len());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&(o as u64).to_le_bytes());
        }
        for &v in &self.neighbors {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

/// Realizes a degree sequence as a simple graph: configuration-model
/// stub pairing, then degree-preserving edge switches to clear self-loops
/// and multi-edges. All randomness comes from stream `n` of the
/// [`StreamStage::Topology`] family (no agent owns that index).
fn realize_degrees(degrees: &[usize], n: usize, seed: u64) -> Result<Vec<Vec<u32>>> {
    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().sum());
    for (i, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(i as u32, d));
    }
    debug_assert!(
        stubs.len().is_multiple_of(2),
        "caller ensures an even stub count"
    );
    let mut rng = RoundStreams::new(seed, 0).rng(n, StreamStage::Topology);
    // Seeded Fisher–Yates.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut edges: Vec<(u32, u32)> = stubs
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .collect();
    let norm = |a: u32, b: u32| if a <= b { (a, b) } else { (b, a) };
    // `seen` holds every *good* (simple, first-occurrence) edge; the rest
    // go to the repair queue.
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for (i, &(a, b)) in edges.iter().enumerate() {
        if a == b || !seen.insert(norm(a, b)) {
            queue.push(i);
        }
    }
    // Each switch replaces a bad edge (a,b) and a good edge (c,d) with
    // (a,d) and (c,b) — degrees are preserved, and both new edges are
    // checked to be simple and fresh before committing.
    let mut budget = 200usize * edges.len().max(16);
    while let Some(&i) = queue.last() {
        if budget == 0 {
            return Err(bad(
                "degree sequence could not be realized as a simple graph \
                 (edge-switch repair budget exhausted; try another seed)",
            ));
        }
        budget -= 1;
        let j = rng.gen_range(0..edges.len());
        if j == i || queue.contains(&j) {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        let e1 = norm(a, d);
        let e2 = norm(c, b);
        if a == d || c == b || e1 == e2 || seen.contains(&e1) || seen.contains(&e2) {
            continue;
        }
        seen.remove(&norm(c, d));
        seen.insert(e1);
        seen.insert(e2);
        edges[i] = (a, d);
        edges[j] = (c, b);
        queue.pop();
    }
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        lists[a as usize].push(b);
        lists[b as usize].push(a);
    }
    for row in &mut lists {
        row.sort_unstable();
    }
    Ok(lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrees_of(t: &Topology) -> Vec<usize> {
        (0..t.n()).map(|i| t.degree(i)).collect()
    }

    /// Simple-graph check: sorted lists, no self-loops, no duplicates,
    /// and every edge present in both directions.
    fn assert_simple(t: &Topology) {
        for i in 0..t.n() {
            let row = t.neighbors(i);
            for w in row.windows(2) {
                assert!(w[0] < w[1], "agent {i}: unsorted or duplicate neighbor");
            }
            for &j in row {
                assert_ne!(j as usize, i, "agent {i}: self-loop");
                assert!(
                    t.neighbors(j as usize).contains(&(i as u32)),
                    "edge ({i},{j}) is not symmetric"
                );
            }
        }
    }

    #[test]
    fn spec_parse_round_trips() {
        for text in ["complete", "ring:4", "regular:8", "powerlaw:2.5"] {
            let spec = TopologySpec::parse(text).expect("parses");
            assert_eq!(spec.label(), text);
        }
        assert!(TopologySpec::parse("complete").unwrap().is_complete());
        assert!(!TopologySpec::parse("ring:1").unwrap().is_complete());
    }

    #[test]
    fn spec_parse_rejects_malformed_input() {
        for text in [
            "torus:3",
            "ring",
            "ring:0",
            "ring:x",
            "regular:0",
            "regular:2.5",
            "powerlaw:1.0",
            "powerlaw:abc",
            "powerlaw:inf",
            "complete:1",
            "",
        ] {
            let err = TopologySpec::parse(text).expect_err(text);
            assert!(matches!(err, EngineError::BadTopology { .. }), "{text}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn complete_is_listless() {
        let t = Topology::build(TopologySpec::Complete, 100, 7).expect("builds");
        assert!(t.is_complete());
        assert_eq!(t.degree(0), 99);
        assert_eq!(t.min_degree(), 99);
        assert_eq!(t.max_degree(), 99);
        assert!(t.csr_bytes().len() == 8); // just n — no CSR arrays
    }

    #[test]
    #[should_panic(expected = "no materialized neighbor lists")]
    fn complete_neighbors_panics() {
        let t = Topology::build(TopologySpec::Complete, 4, 0).expect("builds");
        let _ = t.neighbors(0);
    }

    #[test]
    fn ring_structure_is_exact() {
        let t = Topology::build(TopologySpec::Ring { k: 2 }, 7, 1).expect("builds");
        assert_eq!(t.neighbors(0), &[1, 2, 5, 6]);
        assert_eq!(t.neighbors(3), &[1, 2, 4, 5]);
        assert_eq!(t.min_degree(), 4);
        assert_eq!(t.max_degree(), 4);
        assert_simple(&t);
    }

    #[test]
    fn ring_rejects_oversized_span() {
        // n = 7 supports k ≤ 3; k = 4 would wrap onto itself.
        assert!(Topology::build(TopologySpec::Ring { k: 3 }, 7, 1).is_ok());
        let err = Topology::build(TopologySpec::Ring { k: 4 }, 7, 1).expect_err("too wide");
        assert!(err.to_string().contains("ring:4"));
    }

    #[test]
    fn random_regular_has_uniform_degree() {
        let t = Topology::build(TopologySpec::RandomRegular { d: 4 }, 64, 99).expect("builds");
        assert_eq!(degrees_of(&t), vec![4; 64]);
        assert_simple(&t);
    }

    #[test]
    fn random_regular_rejects_impossible_grids() {
        // Odd n · odd d leaves an unmatched stub.
        let err =
            Topology::build(TopologySpec::RandomRegular { d: 3 }, 9, 0).expect_err("odd stubs");
        assert!(err.to_string().contains("odd stub count"));
        // Degree must stay below n.
        let err = Topology::build(TopologySpec::RandomRegular { d: 8 }, 8, 0).expect_err("d = n");
        assert!(err.to_string().contains("below n"));
    }

    #[test]
    fn powerlaw_degrees_are_positive_and_simple() {
        let t = Topology::build(TopologySpec::PowerLaw { alpha: 2.5 }, 64, 3).expect("builds");
        assert!(t.min_degree() >= 1);
        assert!(t.max_degree() <= 63);
        assert_eq!(degrees_of(&t).iter().sum::<usize>() % 2, 0);
        assert_simple(&t);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        for spec in [
            TopologySpec::Ring { k: 3 },
            TopologySpec::RandomRegular { d: 6 },
            TopologySpec::PowerLaw { alpha: 2.2 },
        ] {
            let a = Topology::build(spec, 48, 42).expect("builds");
            let b = Topology::build(spec, 48, 42).expect("builds");
            assert_eq!(a.csr_bytes(), b.csr_bytes(), "{}", spec.label());
            assert_eq!(a, b);
        }
        // Different seeds give different random graphs (rings are
        // seed-independent by construction, so only the random families).
        let a = Topology::build(TopologySpec::RandomRegular { d: 6 }, 48, 42).expect("builds");
        let b = Topology::build(TopologySpec::RandomRegular { d: 6 }, 48, 43).expect("builds");
        assert_ne!(a.csr_bytes(), b.csr_bytes());
    }

    #[test]
    fn empty_population_is_rejected() {
        let err = Topology::build(TopologySpec::Complete, 0, 0).expect_err("empty");
        assert!(err.to_string().contains("empty population"));
    }
}
