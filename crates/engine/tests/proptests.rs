//! Property-based tests for the simulation engine — most importantly the
//! distributional equivalence of the exact and aggregated channels.

use np_engine::channel::{Channel, ChannelKind};
use np_engine::opinion::Opinion;
use np_engine::population::{PopulationConfig, Role};
use np_engine::streams::StreamRng;
use np_linalg::noise::NoiseMatrix;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn observation_totals(
    kind: ChannelKind,
    noise: &NoiseMatrix,
    displays: &[usize],
    h: usize,
    reps: usize,
    seed: u64,
) -> Vec<u64> {
    let channel = Channel::new(noise, kind);
    let mut rng = StreamRng::seed_from_u64(seed);
    let d = noise.dim();
    let mut out = vec![0u64; displays.len() * d];
    let mut totals = vec![0u64; d];
    for _ in 0..reps {
        channel.fill_observations(displays, h, &mut rng, &mut out);
        for agent in 0..displays.len() {
            for s in 0..d {
                totals[s] += out[agent * d + s];
            }
        }
    }
    totals
}

proptest! {
    // Statistical tests get fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The workhorse guarantee: per-symbol observation frequencies agree
    /// between the two channel implementations for random display
    /// configurations and random binary noise.
    #[test]
    fn exact_and_aggregated_channels_agree(
        ones in 0usize..=40,
        delta in 0.0f64..=0.5,
        h in 1usize..12,
        seed in any::<u64>()
    ) {
        let n = 40;
        let noise = NoiseMatrix::uniform(2, delta).unwrap();
        let displays: Vec<usize> = (0..n).map(|i| usize::from(i < ones)).collect();
        let reps = 150;
        let exact = observation_totals(ChannelKind::Exact, &noise, &displays, h, reps, seed);
        let aggregated =
            observation_totals(ChannelKind::Aggregated, &noise, &displays, h, reps, seed ^ 1);
        let total = (n * h * reps) as f64;
        let f_exact = exact[1] as f64 / total;
        let f_aggr = aggregated[1] as f64 / total;
        // Expected frequency and a 5σ band for a Bernoulli mean over
        // `total` draws.
        let q = ones as f64 / n as f64;
        let expect = q * (1.0 - delta) + (1.0 - q) * delta;
        let band = 5.0 * (0.25 / total).sqrt();
        prop_assert!((f_exact - expect).abs() < band, "exact {f_exact} vs {expect}");
        prop_assert!((f_aggr - expect).abs() < band, "aggregated {f_aggr} vs {expect}");
    }
}

proptest! {
    #[test]
    fn channel_conserves_observation_count(
        n in 1usize..30,
        h in 1usize..20,
        delta in 0.0f64..=0.25,
        seed in any::<u64>()
    ) {
        let noise = NoiseMatrix::uniform(4, delta).unwrap();
        let displays: Vec<usize> = (0..n).map(|i| i % 4).collect();
        for kind in [ChannelKind::Exact, ChannelKind::Aggregated] {
            let channel = Channel::new(&noise, kind);
            let mut rng = StreamRng::seed_from_u64(seed);
            let mut out = vec![0u64; n * 4];
            channel.fill_observations(&displays, h, &mut rng, &mut out);
            for agent in 0..n {
                let got: u64 = out[agent * 4..agent * 4 + 4].iter().sum();
                prop_assert_eq!(got, h as u64, "{:?}", kind);
            }
        }
    }

    #[test]
    fn population_roles_match_declared_counts(
        s0 in 0usize..10,
        s1 in 0usize..10,
        extra in 1usize..30,
        h in 1usize..5
    ) {
        prop_assume!(s0 != s1);
        prop_assume!(s0 + s1 > 0);
        let n = s0 + s1 + extra;
        let config = PopulationConfig::new(n, s0, s1, h).unwrap();
        let mut count0 = 0;
        let mut count1 = 0;
        let mut non = 0;
        for role in config.iter_roles() {
            match role {
                Role::Source(Opinion::Zero) => count0 += 1,
                Role::Source(Opinion::One) => count1 += 1,
                Role::NonSource => non += 1,
            }
        }
        prop_assert_eq!(count0, s0);
        prop_assert_eq!(count1, s1);
        prop_assert_eq!(non, extra);
        prop_assert_eq!(config.bias(), s0.abs_diff(s1));
        let correct = config.correct_opinion();
        prop_assert_eq!(correct == Opinion::One, s1 > s0);
    }

    #[test]
    fn noiseless_channel_reproduces_display_distribution(
        displays in prop::collection::vec(0usize..2, 2..25),
        h in 1usize..10,
        seed in any::<u64>()
    ) {
        // δ = 0: observation counts are exactly the sampled displays, so
        // if everyone displays the same symbol the output is
        // deterministic.
        let noise = NoiseMatrix::noiseless(2);
        let all_same = displays.windows(2).all(|w| w[0] == w[1]);
        let channel = Channel::new(&noise, ChannelKind::Aggregated);
        let mut rng = StreamRng::seed_from_u64(seed);
        let mut out = vec![0u64; displays.len() * 2];
        channel.fill_observations(&displays, h, &mut rng, &mut out);
        if all_same {
            let sym = displays[0];
            for agent in 0..displays.len() {
                prop_assert_eq!(out[agent * 2 + sym], h as u64);
            }
        } else {
            // Mixed displays: totals per agent still sum to h.
            for agent in 0..displays.len() {
                prop_assert_eq!(out[agent * 2] + out[agent * 2 + 1], h as u64);
            }
        }
    }

    #[test]
    fn seed_determinism_holds_for_random_configs(
        n in 2usize..30,
        s1 in 1usize..3,
        h in 1usize..8,
        delta in 0.0f64..=0.4,
        seed in any::<u64>()
    ) {
        prop_assume!(s1 < n);
        use np_engine::protocol::{AgentState, Protocol};
        use np_engine::world::World;

        struct Flip;
        struct FlipAgent(Opinion);
        impl Protocol for Flip {
            type Agent = FlipAgent;
            fn alphabet_size(&self) -> usize { 2 }
            fn init_agent(&self, role: Role, rng: &mut StreamRng) -> FlipAgent {
                FlipAgent(role.preference().unwrap_or(Opinion::from_bool(rand::Rng::gen(rng))))
            }
        }
        impl AgentState for FlipAgent {
            fn display(&self, _rng: &mut StreamRng) -> usize { self.0.as_index() }
            fn update(&mut self, observed: &[u64], _rng: &mut StreamRng) {
                if observed[1] > observed[0] { self.0 = Opinion::One; }
            }
            fn opinion(&self) -> Opinion { self.0 }
        }

        let config = PopulationConfig::new(n, 0, s1, h).unwrap();
        let noise = NoiseMatrix::uniform(2, delta).unwrap();
        let mut a = World::new(&Flip, config, &noise, ChannelKind::Aggregated, seed).unwrap();
        let mut b = World::new(&Flip, config, &noise, ChannelKind::Aggregated, seed).unwrap();
        a.run(5);
        b.run(5);
        let ops_a: Vec<Opinion> = a.iter_agents().map(|x| x.opinion()).collect();
        let ops_b: Vec<Opinion> = b.iter_agents().map(|x| x.opinion()).collect();
        prop_assert_eq!(ops_a, ops_b);
    }
}

proptest! {
    /// Word-level popcount histograms over the packed bit planes agree
    /// with a naive per-agent count, including ragged tails (n % 64 ≠ 0)
    /// and every supported alphabet width.
    #[test]
    fn packed_histogram_matches_naive_counts(
        n in 1usize..700,
        d in 2usize..=4,
        seed in 0u64..1_000,
    ) {
        use np_engine::packed::PackedDisplays;
        let mut rng = StreamRng::seed_from_u64(seed);
        let symbols: Vec<usize> = (0..n).map(|_| rng.gen_range(0..d)).collect();
        let mut packed = PackedDisplays::new(n, d);
        packed.pack_from(&symbols);
        let mut hist = vec![0u64; d];
        packed.histogram_into(&mut hist);
        let mut naive = vec![0u64; d];
        for &s in &symbols {
            naive[s] += 1;
        }
        prop_assert_eq!(&hist, &naive);
        prop_assert_eq!(hist.iter().sum::<u64>(), n as u64);
    }

    /// Per-chunk partial histograms (the hot path's tally) sum to the
    /// whole-population histogram for any word-aligned chunk length.
    #[test]
    fn packed_chunk_partials_sum_to_global(
        n in 1usize..700,
        d in 2usize..=4,
        chunk_words in 1usize..6,
        seed in 0u64..1_000,
    ) {
        use np_engine::packed::PackedDisplays;
        let mut rng = StreamRng::seed_from_u64(seed);
        let symbols: Vec<usize> = (0..n).map(|_| rng.gen_range(0..d)).collect();
        let mut packed = PackedDisplays::new(n, d);
        packed.pack_from(&symbols);
        let mut global = vec![0u64; d];
        packed.histogram_into(&mut global);
        let mut summed = vec![0u64; d];
        for chunk in packed.chunks_mut(chunk_words * 64) {
            chunk.histogram_into(&mut summed);
        }
        prop_assert_eq!(&summed, &global);
    }
}
