//! Offline, deterministic subset of the `proptest` 1.x API.
//!
//! See `Cargo.toml` for scope and the differences from upstream. The core
//! pieces are [`Strategy`] (sample a value from a seeded RNG), the
//! [`proptest!`] macro (expand each property into a `#[test]` running
//! [`ProptestConfig::cases`] sampled cases), and the `prop_assert*` macros
//! (fail the case with a message instead of unwinding immediately).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// `prop_assert*` failed; the runner panics with this message.
    Fail(String),
}

/// Per-test configuration. Only `cases` is supported.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// Upstream strategies are shrink trees; here a strategy is just a
/// sampler, so a failing case reports un-minimized inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        })*
    };
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|i| self[i].sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $ty
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<A> {
    marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// Strategy producing any value of `A` (upstream `proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;

    /// A length specification: exact or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Runs one property's cases. Used by the [`proptest!`] expansion; not
/// public API upstream, public here so the macro can reach it.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Deterministic seed: FNV-1a over the test name. Reproducible runs are
    // workspace policy; change the name to change the stream.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < 65_536,
                    "{name}: prop_assume rejected {rejected} cases; strategy too narrow"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {accepted} passing cases: {msg}")
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (the runner draws fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Expands each `fn name(arg in strategy, ...) { body }` into a `#[test]`
/// running [`ProptestConfig::cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $(let $arg = $strategy;)+
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&$arg, rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
