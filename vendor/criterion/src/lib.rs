//! Offline, minimal subset of the `criterion` 0.5 benchmarking API.
//!
//! Measurement model: each benchmark warms up briefly, then runs batches
//! of iterations until a ~200 ms time budget is spent, and reports the
//! mean wall-clock time per iteration. There are no statistical analyses,
//! plots, or saved baselines — this exists so `cargo bench` and
//! `cargo clippy --all-targets` work without the network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark (reported, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter string.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with distinct function and parameter parts.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just a parameter under the group's name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Drives the measured iteration loop of one benchmark.
pub struct Bencher {
    per_iter: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, retaining its output via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unmeasured calls so lazy setup is excluded.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget && iters < 1_000_000 {
            let batch = (iters / 2).clamp(1, 10_000);
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += batch_start.elapsed();
            iters += batch;
            // Bail out if a single batch already blew the budget.
            if started.elapsed() > budget * 4 {
                break;
            }
        }
        self.iters = iters;
        self.per_iter = if iters > 0 {
            elapsed / u32::try_from(iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        per_iter: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {per_sec:.3e} elem/s")
        }
        Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {per_sec:.3e} B/s")
        }
        _ => String::new(),
    };
    println!("{name}: {:?}/iter ({} iters){rate}", per_iter, bencher.iters);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.throughput,
            |b| routine(b, input),
        );
        self
    }

    /// Benchmarks `routine` under this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<GroupBenchName>,
        mut routine: R,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into().0),
            self.throughput,
            |b| routine(b),
        );
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A name accepted by [`BenchmarkGroup::bench_function`].
pub struct GroupBenchName(String);

impl From<&str> for GroupBenchName {
    fn from(s: &str) -> Self {
        GroupBenchName(s.to_owned())
    }
}

impl From<String> for GroupBenchName {
    fn from(s: String) -> Self {
        GroupBenchName(s)
    }
}

impl From<BenchmarkId> for GroupBenchName {
    fn from(id: BenchmarkId) -> Self {
        GroupBenchName(id.name)
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: R) {
        run_one(name, None, |b| routine(b));
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            marker: std::marker::PhantomData,
        }
    }
}

/// Declares a benchmark group function, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
