//! Seedable generators. Only [`StdRng`] is provided: the workspace policy
//! is "all randomness flows from explicit seeds", so there is no
//! `ThreadRng` and no entropy-based constructor.

use crate::chacha::{ChaCha12Core, BUFFER_WORDS};
use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: ChaCha12, bit-compatible with
/// `rand` 0.8's `StdRng` (including `rand_core`'s `BlockRng` buffering
/// rules, which make `next_u64` consume aligned word pairs).
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct StdRng {
    core: ChaCha12Core,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl StdRng {
    fn generate_and_set(&mut self, index: usize) {
        self.core.generate(&mut self.results);
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            core: ChaCha12Core::from_seed(seed),
            results: [0u32; BUFFER_WORDS],
            // Empty buffer: first use triggers a refill.
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core::block::BlockRng::next_u64, verbatim logic: read two
        // consecutive words where possible, pair the buffer's last word
        // with the next refill's first word otherwise.
        let len = BUFFER_WORDS;
        let index = self.index;
        if index < len - 1 {
            self.index += 2;
            (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
        } else if index >= len {
            self.generate_and_set(2);
            (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
        } else {
            let x = u64::from(self.results[len - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.results[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // rand_core's fill_via_u32_chunks: consume whole buffered words,
        // little-endian; a trailing partial chunk consumes one word.
        let mut written = 0;
        while written < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.generate_and_set(0);
            }
            let word = self.results[self.index].to_le_bytes();
            self.index += 1;
            let take = word.len().min(dest.len() - written);
            dest[written..written + take].copy_from_slice(&word[..take]);
            written += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_u64_pairs_words_like_block_rng() {
        // Drawing 64 u32s then one u64 must pair the first buffer's last
        // word (low half) with the second buffer's first word (high half).
        let mut words = StdRng::seed_from_u64(5);
        let mut paired = StdRng::seed_from_u64(5);
        let mut first_buffer = [0u32; BUFFER_WORDS];
        for slot in first_buffer.iter_mut() {
            *slot = words.next_u32();
        }
        let first_of_second = words.next_u32();
        for _ in 0..BUFFER_WORDS - 1 {
            paired.next_u32();
        }
        let crossing = paired.next_u64();
        let expected =
            (u64::from(first_of_second) << 32) | u64::from(first_buffer[BUFFER_WORDS - 1]);
        assert_eq!(crossing, expected);
    }

    #[test]
    fn next_u64_from_aligned_index_reads_lo_then_hi() {
        let mut words = StdRng::seed_from_u64(8);
        let lo = words.next_u32();
        let hi = words.next_u32();
        let mut pair = StdRng::seed_from_u64(8);
        assert_eq!(pair.next_u64(), (u64::from(hi) << 32) | u64::from(lo));
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut bytes = StdRng::seed_from_u64(21);
        let mut words = StdRng::seed_from_u64(21);
        let mut buf = [0u8; 10];
        bytes.fill_bytes(&mut buf);
        let w0 = words.next_u32().to_le_bytes();
        let w1 = words.next_u32().to_le_bytes();
        let w2 = words.next_u32().to_le_bytes();
        assert_eq!(&buf[0..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..10], &w2[..2]);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = StdRng::seed_from_u64(99);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
