//! ChaCha12 block function and the 4-block output buffer, matching
//! `rand_chacha` 0.3.1's `ChaCha12Rng` (the generator behind `StdRng` in
//! `rand` 0.8).
//!
//! Layout follows the original djb variant used by `rand_chacha`: a 64-bit
//! block counter in state words 12–13 and a 64-bit stream id (always 0
//! here) in words 14–15. Output is the keystream serialized as
//! little-endian `u32` words; four consecutive blocks are produced per
//! refill exactly like upstream's wide buffer.

/// "expand 32-byte k" — the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;

/// Blocks generated per refill (upstream buffers 4).
pub const BUFFER_BLOCKS: usize = 4;

/// Words in the output buffer.
pub const BUFFER_WORDS: usize = BLOCK_WORDS * BUFFER_BLOCKS;

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Computes one 12-round ChaCha block for `key` at `counter` into `out`.
fn block(key: &[u32; 8], counter: u64, out: &mut [u32; BLOCK_WORDS]) {
    let mut s = [0u32; BLOCK_WORDS];
    s[..4].copy_from_slice(&CONSTANTS);
    s[4..12].copy_from_slice(key);
    s[12] = counter as u32;
    s[13] = (counter >> 32) as u32;
    // Words 14-15: stream id, fixed to zero (StdRng never sets a stream).
    let initial = s;
    for _ in 0..6 {
        // One double round: 4 column rounds then 4 diagonal rounds.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (o, (word, init)) in out.iter_mut().zip(s.iter().zip(initial.iter())) {
        *o = word.wrapping_add(*init);
    }
}

/// The ChaCha12 core: key plus next-block counter.
#[derive(Clone, Debug)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

impl ChaCha12Core {
    /// Builds a core from a 32-byte seed (the key, little-endian words).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha12Core { key, counter: 0 }
    }

    /// Fills `results` with the next [`BUFFER_BLOCKS`] keystream blocks and
    /// advances the counter, mirroring upstream's wide refill.
    pub fn generate(&mut self, results: &mut [u32; BUFFER_WORDS]) {
        let mut out = [0u32; BLOCK_WORDS];
        for i in 0..BUFFER_BLOCKS {
            block(&self.key, self.counter.wrapping_add(i as u64), &mut out);
            results[i * BLOCK_WORDS..(i + 1) * BLOCK_WORDS].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(BUFFER_BLOCKS as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_depend_on_counter() {
        let key = [1u32; 8];
        let mut a = [0u32; BLOCK_WORDS];
        let mut b = [0u32; BLOCK_WORDS];
        block(&key, 0, &mut a);
        block(&key, 1, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn blocks_depend_on_key() {
        let mut a = [0u32; BLOCK_WORDS];
        let mut b = [0u32; BLOCK_WORDS];
        block(&[1u32; 8], 7, &mut a);
        block(&[2u32; 8], 7, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn refill_is_four_consecutive_blocks() {
        let mut core = ChaCha12Core::from_seed([9u8; 32]);
        let mut wide = [0u32; BUFFER_WORDS];
        core.generate(&mut wide);
        let mut single = [0u32; BLOCK_WORDS];
        for i in 0..BUFFER_BLOCKS {
            block(&core.key, i as u64, &mut single);
            assert_eq!(&wide[i * BLOCK_WORDS..(i + 1) * BLOCK_WORDS], &single);
        }
        assert_eq!(core.counter, BUFFER_BLOCKS as u64);
    }

    #[test]
    fn quarter_round_matches_reference_shape() {
        // The ChaCha quarter-round on an all-zero state with one set bit
        // must diffuse; sanity-check it is not the identity.
        let mut s = [0u32; BLOCK_WORDS];
        s[0] = 1;
        quarter_round(&mut s, 0, 4, 8, 12);
        assert_ne!(s, {
            let mut z = [0u32; BLOCK_WORDS];
            z[0] = 1;
            z
        });
    }
}
