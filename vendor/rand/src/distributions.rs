//! Distributions: [`Standard`] plus the uniform-range machinery backing
//! `Rng::gen_range`, with the exact sampling algorithms of `rand` 0.8.5.

use crate::Rng;

/// A type that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Upstream compares the sign bit, not the low bit.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit multiply-based sample in [0, 1), as upstream.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24-bit multiply-based sample in [0, 1), as upstream.
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int_impls {
    ($($ty:ty => $method:ident as $cast:ty),* $(,)?) => {
        $(impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.$method() as $cast as $ty
            }
        })*
    };
}

standard_int_impls! {
    u8 => next_u32 as u8,
    u16 => next_u32 as u16,
    u32 => next_u32 as u32,
    u64 => next_u64 as u64,
    usize => next_u64 as usize,
    i8 => next_u32 as u8,
    i16 => next_u32 as u16,
    i32 => next_u32 as u32,
    i64 => next_u64 as u64,
    isize => next_u64 as usize,
}

pub mod uniform {
    //! Uniform sampling over ranges, as used by `Rng::gen_range`.
    //!
    //! Integers use Lemire's widening-multiply rejection method with the
    //! same zone computation as `rand` 0.8.5's `UniformInt::sample_single`
    //! / `sample_single_inclusive`; floats use the `[1, 2)` mantissa
    //! construction of `UniformFloat`.

    use super::{Distribution, Standard};
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that `gen_range` can sample uniformly.
    pub trait SampleUniform: Sized {
        /// Samples from `[low, high)`. Callers guarantee `low < high`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

        /// Samples from `[low, high]`. Callers guarantee `low <= high`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range shapes accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }

        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            T::sample_single_inclusive(start, end, rng)
        }

        fn is_empty(&self) -> bool {
            !(self.start() <= self.end())
        }
    }

    macro_rules! uniform_int_impls {
        ($($ty:ty => $unsigned:ty),* $(,)?) => {
            $(impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let range = high.wrapping_sub(low) as $unsigned as u64;
                    // Lemire rejection zone, exactly as rand 0.8.5 computes
                    // it for word-sized types.
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: u64 = Standard.sample(rng);
                        let wide = u128::from(v) * u128::from(range);
                        let (hi, lo) = ((wide >> 64) as u64, wide as u64);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = (high.wrapping_sub(low) as $unsigned as u64).wrapping_add(1);
                    if range == 0 {
                        // The full integer range: every word is valid.
                        return Standard.sample(rng);
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: u64 = Standard.sample(rng);
                        let wide = u128::from(v) * u128::from(range);
                        let (hi, lo) = ((wide >> 64) as u64, wide as u64);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            })*
        };
    }

    uniform_int_impls! {
        u64 => u64,
        usize => usize,
        u32 => u32,
        i64 => u64,
        i32 => u32,
        isize => usize,
    }

    impl SampleUniform for f64 {
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let scale = high - low;
            loop {
                // Mantissa trick: uniform in [1, 2), shift to [0, 1).
                let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                // Rounding can land exactly on `high`; resample (upstream
                // narrows the scale instead, a difference of one ulp).
                if res < high {
                    return res;
                }
            }
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self {
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let value0_1 = value1_2 - 1.0;
            value0_1 * (high - low) + low
        }
    }

    impl SampleUniform for f32 {
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let scale = high - low;
            loop {
                let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res < high {
                    return res;
                }
            }
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self {
            let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
            let value0_1 = value1_2 - 1.0;
            value0_1 * (high - low) + low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn standard_u64_is_raw_word() {
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        let x: u64 = Standard.sample(&mut a);
        assert_eq!(x, b.next_u64());
    }

    #[test]
    fn bool_uses_sign_bit() {
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        let flag: bool = Standard.sample(&mut a);
        assert_eq!(flag, (b.next_u32() as i32) < 0);
    }

    #[test]
    fn small_ranges_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[usize::sample_single(0, 4, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut low_seen = false;
        let mut high_seen = false;
        for _ in 0..1_000 {
            match u64::sample_single_inclusive(0, 1, &mut rng) {
                0 => low_seen = true,
                1 => high_seen = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(low_seen && high_seen);
    }

    #[test]
    fn float_range_stays_inside() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10_000 {
            let x = f64::sample_single(-2.0, 3.0, &mut rng);
            assert!((-2.0..3.0).contains(&x));
            let y = f64::sample_single_inclusive(0.0, 0.5, &mut rng);
            assert!((0.0..=0.5).contains(&y));
        }
    }
}
