//! Offline, deterministic subset of the `rand` 0.8 API.
//!
//! This crate is vendored into the workspace (see `vendor/` in the repo
//! root) so that builds never touch the network. It reimplements the exact
//! algorithms of `rand` 0.8.5 and `rand_chacha` 0.3.1 for the API surface
//! the workspace uses, so any test expectation tuned against upstream
//! seeded streams keeps the same bit-for-bit behavior:
//!
//! * [`rngs::StdRng`] — ChaCha12 with the upstream 4-block buffer and
//!   `BlockRng` word-pairing rules for `next_u64`.
//! * [`SeedableRng::seed_from_u64`] — the upstream PCG32-based seed
//!   expansion.
//! * [`Rng::gen_range`] — Lemire widening-multiply rejection sampling for
//!   integers, the `[1, 2)`-mantissa trick for floats.
//! * [`distributions::Standard`] — sign-bit `bool`, 53-bit `f64`, 24-bit
//!   `f32`.
//!
//! **Intentionally missing:** `thread_rng`, `from_entropy`, `OsRng`, and
//! every other ambient entropy source. The workspace's determinism policy
//! (enforced by `cargo xtask check`) requires all randomness to flow from
//! explicit seeds; this crate makes the banned constructors unrepresentable
//! rather than merely linted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

mod chacha;

pub use distributions::uniform::{SampleRange, SampleUniform};
pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word and byte output.
///
/// Mirrors `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
///
/// Mirrors `rand_core::SeedableRng`, including the exact PCG32-based
/// default implementation of [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it to a full seed
    /// with the same PCG32 stream upstream `rand_core` uses.
    fn seed_from_u64(mut state: u64) -> Self {
        // Identical to rand_core 0.6: one PCG32 step per 4 seed bytes.
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-level convenience methods over any [`RngCore`].
///
/// Mirrors the `rand::Rng` extension trait for the methods this workspace
/// uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
/// [`Rng::sample`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // Same integer-threshold scheme as rand 0.8's Bernoulli.
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(5..5);
    }

    #[test]
    fn f64_samples_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_samples_are_balanced() {
        let mut rng = StdRng::seed_from_u64(13);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&ones), "ones {ones}");
    }
}
